"""Tests for the service planner/executor and the result caches.

The contract under test is ISSUE 7's tentpole: ``plan_sweep`` +
``execute_plan`` is the same computation as the one-shot runners (which are
now thin wrappers over it), the content-addressed cache serves identical
resubmissions bit for bit, and incremental shard aggregates merge to
exactly the one-shot report.
"""

import pickle
import random

import pytest

from repro.analysis import (
    ResilienceReport,
    SweepCase,
    SweepReport,
    run_resilience_sweep,
    run_sweep,
)
from repro.core import (
    Labeling,
    RandomRFairSchedule,
    RunOutcome,
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
)
from repro import ExecutionPolicy
from repro.exceptions import ValidationError
from repro.faults.models import RandomCorruption
from repro.faults.schedules import NoFaults, OneShotFault
from repro.graphs import clique, unidirectional_ring
from repro.service import (
    CaseSpec,
    InMemoryCache,
    SqliteCache,
    SweepPlan,
    execute_plan,
    iter_shards,
    plan_resilience_sweep,
    plan_sweep,
)

from tests.helpers import or_clique_protocol, random_bit_labeling


# Module-level pieces so plans pickle and the multiprocessing path works.
def _xor_bit(incoming, _x):
    (value,) = incoming.values()
    return value, value


def _ring(n):
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _xor_bit) for i in range(n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name="ring")


def _sync(index, case):
    return SynchronousSchedule(len(case.inputs))


def _population(protocol, count, seed=0):
    return [
        SweepCase(
            (0,) * protocol.topology.n,
            random_bit_labeling(protocol.topology, seed=seed + s),
            tag=s,
        )
        for s in range(count)
    ]


def _fault_factory(i, case):
    if i % 2:
        return OneShotFault(3, RandomCorruption(0.5, seed=i))
    return NoFaults()


class TestCaches:
    def test_in_memory_roundtrip_and_stats(self):
        cache = InMemoryCache()
        assert cache.get("a") is None
        cache.put("a", ("value", 1))
        assert cache.get("a") == ("value", 1)
        assert len(cache) == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.lookups) == (1, 1, 2)
        assert stats.hit_rate == 0.5
        assert "50.00%" in stats.describe()

    def test_untouched_cache_reports_zero_rate(self):
        assert InMemoryCache().stats.hit_rate == 0.0

    def test_sqlite_roundtrip(self, tmp_path):
        with SqliteCache(tmp_path / "cache.db") as cache:
            cache.put("k", {"nested": (1, 2.5, "x")})
            assert cache.get("k") == {"nested": (1, 2.5, "x")}
            cache.put("k", "overwritten")
            assert cache.get("k") == "overwritten"
            assert len(cache) == 1

    def test_sqlite_persists_across_connections(self, tmp_path):
        path = tmp_path / "cache.db"
        with SqliteCache(path) as cache:
            cache.put("k", 42)
        with SqliteCache(path) as reopened:
            assert reopened.get("k") == 42
            # counters are per-connection, contents are not
            assert reopened.stats.hits == 1


class TestPlanning:
    def test_plan_shape(self):
        protocol = _ring(3)
        plan = plan_sweep(protocol, _population(protocol, 5), _sync)
        assert len(plan) == 5
        assert [spec.index for spec in plan] == list(range(5))
        assert plan.kind == "sweep"
        assert plan.report_type is SweepReport
        assert all(spec.faults is None for spec in plan.specs)
        assert "cases=5" in plan.describe()

    def test_resilience_plan_carries_fault_plans(self):
        protocol = _ring(3)
        plan = plan_resilience_sweep(
            protocol, _population(protocol, 4), _sync, _fault_factory
        )
        assert plan.kind == "resilience"
        assert plan.report_type is ResilienceReport
        assert all(spec.faults is not None for spec in plan.specs)
        schedule, faults = plan.specs[1].work_item()
        assert isinstance(faults, OneShotFault)

    def test_unknown_plan_kind_is_rejected(self):
        protocol = _ring(3)
        with pytest.raises(ValidationError, match="unknown plan kind"):
            SweepPlan(protocol=protocol, specs=(), kind="mystery")

    def test_factories_run_in_parent_in_case_order(self):
        calls = []
        protocol = _ring(3)

        def factory(index, case):
            calls.append(("s", index))
            return SynchronousSchedule(3)

        def faults(index, case):
            calls.append(("f", index))
            return NoFaults()

        plan_resilience_sweep(
            protocol, _population(protocol, 3), factory, faults
        )
        assert calls == [
            ("s", 0), ("f", 0), ("s", 1), ("f", 1), ("s", 2), ("f", 2)
        ]


class TestExecutorEquivalence:
    """execute_plan(plan_sweep(...)) == run_sweep(...) — by construction,
    and measured."""

    def test_sweep_matches_one_shot(self):
        protocol = or_clique_protocol(clique(4))
        cases = _population(protocol, 8)
        plan = plan_sweep(protocol, cases, _sync)
        assert execute_plan(plan) == run_sweep(protocol, cases, _sync)

    def test_batch_executor_matches_serial(self):
        protocol = _ring(4)
        cases = _population(protocol, 6)
        plan = plan_sweep(protocol, cases, _sync, max_steps=50)
        serial = execute_plan(plan)
        batch = execute_plan(plan, policy=ExecutionPolicy(executor="batch"))
        assert serial == batch

    def test_seeded_stateful_factory_is_planned_once(self):
        # The PR-2 reproducibility contract: a stateful factory sees the
        # same call sequence under planning as under the one-shot runner.
        protocol = _ring(4)
        cases = _population(protocol, 6)

        def stateful():
            rng = random.Random(7)
            return lambda i, c: RandomRFairSchedule(
                4, r=2, seed=rng.randrange(2**32)
            )

        report = run_sweep(protocol, cases, stateful(), max_steps=60)
        plan = plan_sweep(protocol, cases, stateful(), max_steps=60)
        assert execute_plan(plan) == report

    def test_resilience_matches_one_shot(self):
        protocol = or_clique_protocol(clique(4))
        cases = _population(protocol, 6)
        plan = plan_resilience_sweep(
            protocol, cases, _sync, _fault_factory, max_steps=80
        )
        one_shot = run_resilience_sweep(
            protocol, cases, _sync, _fault_factory, max_steps=80
        )
        assert execute_plan(plan) == one_shot

    def test_processes_fan_out_matches_serial(self):
        protocol = _ring(4)
        cases = _population(protocol, 6)
        plan = plan_sweep(protocol, cases, _sync, max_steps=50)
        assert execute_plan(
            plan, policy=ExecutionPolicy(processes=2)
        ) == execute_plan(plan)

    def test_empty_plan_returns_empty_report(self):
        plan = plan_sweep(_ring(3), [], _sync)
        assert execute_plan(plan) == SweepReport(results=())
        assert list(iter_shards(plan)) == []

    def test_validation_happens_before_factories(self):
        # A bad policy errors without touching cases.
        def exploding_factory(i, c):
            raise AssertionError("factory must not run")

        protocol = _ring(3)
        with pytest.raises(ValidationError, match="unknown executor"):
            run_sweep(
                protocol,
                _population(protocol, 2),
                exploding_factory,
                policy=ExecutionPolicy(executor="gpu"),
            )
        with pytest.raises(ValidationError, match="executor='batch'"):
            run_sweep(
                protocol,
                _population(protocol, 2),
                exploding_factory,
                policy=ExecutionPolicy(kernel="numba"),
            )
        with pytest.raises(ValidationError, match="unknown recovery"):
            run_resilience_sweep(
                protocol,
                _population(protocol, 2),
                exploding_factory,
                exploding_factory,
                recovered="sometimes",
            )

    def test_recovered_rejected_on_sweep_plans(self):
        plan = plan_sweep(_ring(3), _population(_ring(3), 1), _sync)
        with pytest.raises(ValidationError, match="resilience criterion"):
            execute_plan(plan, recovered="label")

    def test_bad_shard_size_is_rejected(self):
        protocol = _ring(3)
        plan = plan_sweep(protocol, _population(protocol, 3), _sync)
        with pytest.raises(ValidationError, match="shard_size"):
            list(iter_shards(plan, shard_size=0))


class TestIncrementalAggregation:
    def test_shard_aggregates_grow_to_the_one_shot_report(self):
        protocol = or_clique_protocol(clique(4))
        cases = _population(protocol, 10)
        plan = plan_sweep(protocol, cases, _sync)
        one_shot = run_sweep(protocol, cases, _sync)
        seen = 0
        progress = None
        for progress in iter_shards(plan, shard_size=3):
            seen += len(progress.results)
            assert len(progress.aggregate) == seen
            assert progress.done == (seen == 10)
        assert progress.aggregate == one_shot
        assert progress.total_shards == 4
        assert "shard 4/4" in progress.describe()

    def test_shard_results_partition_the_plan(self):
        protocol = _ring(4)
        plan = plan_sweep(protocol, _population(protocol, 7), _sync)
        indices = []
        for progress in iter_shards(plan, shard_size=2):
            indices.extend(result.index for result in progress.results)
        assert indices == list(range(7))

    def test_batch_sharded_equals_serial_unsharded(self):
        protocol = _ring(4)
        plan = plan_sweep(protocol, _population(protocol, 9), _sync, max_steps=50)
        serial = execute_plan(plan)
        assert (
            execute_plan(
                plan,
                policy=ExecutionPolicy(executor="batch"),
                shard_size=4,
            )
            == serial
        )


class TestResultCacheIntegration:
    def test_warm_execution_is_bit_identical(self):
        protocol = or_clique_protocol(clique(4))
        plan = plan_sweep(protocol, _population(protocol, 8), _sync)
        cache = InMemoryCache()
        cold = execute_plan(plan, cache=cache)
        warm = execute_plan(plan, cache=cache)
        assert warm == cold
        assert cache.stats.hits == 8 and cache.stats.misses == 8
        assert len(cache) == 8

    def test_cacheless_execution_computes_no_fingerprints(self):
        protocol = _ring(3)
        plan = plan_sweep(protocol, _population(protocol, 4), _sync)
        execute_plan(plan)
        assert plan._fingerprints == {}

    def test_hits_are_reattached_to_position_and_tag(self):
        protocol = or_clique_protocol(clique(4))
        labeling = random_bit_labeling(protocol.topology, seed=3)
        first = plan_sweep(
            protocol, [SweepCase((0,) * 4, labeling, tag="cold")], _sync
        )
        second = plan_sweep(
            protocol,
            [
                SweepCase((1,) * 4, labeling, tag="other"),
                SweepCase((0,) * 4, labeling, tag="warm"),
            ],
            _sync,
        )
        cache = InMemoryCache()
        execute_plan(first, cache=cache)
        report = execute_plan(second, cache=cache)
        assert cache.stats.hits == 1  # same physical case, new tag/position
        assert report.results[1].tag == "warm"
        assert report.results[1].index == 1

    def test_cache_is_shared_across_executors(self):
        protocol = _ring(4)
        plan = plan_sweep(protocol, _population(protocol, 6), _sync, max_steps=50)
        cache = InMemoryCache()
        cold = execute_plan(plan, cache=cache)
        warm = execute_plan(
            plan, cache=cache, policy=ExecutionPolicy(executor="batch")
        )
        assert warm == cold
        assert cache.stats.hits == 6

    def test_criterion_is_applied_to_cached_results(self):
        protocol = or_clique_protocol(clique(4))
        plan = plan_resilience_sweep(
            protocol,
            _population(protocol, 6),
            _sync,
            _fault_factory,
            max_steps=80,
        )
        cache = InMemoryCache()
        label = execute_plan(plan, cache=cache)
        never = execute_plan(plan, cache=cache, recovered=lambda result: False)
        # The second run is fully warm yet re-judged under its own criterion.
        assert cache.stats.hits == 6
        assert label.recovered_count == 6
        assert never.recovered_count == 0
        # Outcomes (the cached physics) agree case for case.
        assert [r.outcome for r in never.results] == [
            r.outcome for r in label.results
        ]

    def test_sqlite_cache_serves_a_new_process_shape(self, tmp_path):
        # Plan pickled + cache on disk: the full submit-elsewhere story.
        protocol = _ring(4)
        plan = plan_sweep(protocol, _population(protocol, 5), _sync, max_steps=50)
        path = tmp_path / "cache.db"
        with SqliteCache(path) as cache:
            cold = execute_plan(plan, cache=cache)
        clone = pickle.loads(pickle.dumps(plan))
        with SqliteCache(path) as cache:
            warm = execute_plan(clone, cache=cache)
            assert cache.stats.hits == 5
        assert warm == cold

    def test_near_miss_cases_do_not_share_entries(self):
        # Differing only in schedule seed: every case must miss.
        protocol = _ring(4)
        cases = _population(protocol, 1) * 2  # the same case twice

        def factory(i, c):
            return RandomRFairSchedule(4, r=2, seed=i)

        specs = plan_sweep(protocol, cases, factory, max_steps=40)
        cache = InMemoryCache()
        execute_plan(specs, cache=cache)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_non_stable_cases_cache_like_stable_ones(self):
        # A rotating ring labeling never stabilizes (the engine certifies
        # the orbit as OSCILLATING); non-stable results round-trip from the
        # cache just like stable ones.
        protocol = _ring(3)
        rotating = Labeling(protocol.topology, (1, 0, 0))
        plan = plan_sweep(
            protocol, [SweepCase((0, 0, 0), rotating)], _sync, max_steps=30
        )
        cache = InMemoryCache()
        cold = execute_plan(plan, cache=cache)
        warm = execute_plan(plan, cache=cache)
        assert warm == cold
        assert warm.results[0].outcome is RunOutcome.OSCILLATING
        assert warm.results[0].steps_executed == cold.results[0].steps_executed


class TestCaseSpec:
    def test_work_item_shape(self):
        topology = _ring(2).topology
        case = SweepCase((0, 0), Labeling(topology, (0,) * topology.m))
        schedule = SynchronousSchedule(2)
        assert CaseSpec(0, case, schedule).work_item() is schedule
        spec = CaseSpec(0, case, schedule, faults=NoFaults())
        schedule_out, faults = spec.work_item()
        assert schedule_out is schedule
        assert isinstance(faults, NoFaults)
