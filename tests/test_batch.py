"""Batch backend equivalence with the serial engine.

The contract of :mod:`repro.core.batch` is *equality*: for any case the
serial engine can run, the batch backend must produce an equal report —
outcome, round counts, steps, cycle facts, and final configuration.  These
tests drive that contract property-style over randomly generated protocols,
schedules, and fault plans, plus directed tests for each lift/fallback tier.
"""

from __future__ import annotations

import contextlib
import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionPolicy
from repro.analysis import SweepCase, run_resilience_sweep, run_sweep
from repro.core import (
    BatchSimulator,
    BitStrings,
    ExplicitLabelSpace,
    ExplicitSchedule,
    Labeling,
    LambdaStatefulReaction,
    LassoSchedule,
    RandomRFairSchedule,
    RoundRobinSchedule,
    Simulator,
    StatefulProtocol,
    StatelessProtocol,
    SynchronousSchedule,
    TabularReaction,
    UniformReaction,
    batch_compile,
    binary,
    compile_protocol,
)
from repro.core.batch import LabelInterner, dtype_capacity, packed_dtype
from repro.core.batch_kernels import HAVE_NUMBA
from repro.exceptions import ValidationError
from repro.faults import (
    BurstFault,
    ComposedFault,
    ComposedFaultSchedule,
    NoFaults,
    OneShotFault,
    PeriodicFault,
    RandomCorruption,
    StuckAtFault,
    TargetedCorruption,
    WindowFault,
)
from repro.graphs import clique, unidirectional_ring

np = pytest.importorskip("numpy")

#: Every compute kernel the backend offers; the numba leg skip-marks cleanly
#: when numba is absent so the plain matrix stays green unchanged.
BATCH = ExecutionPolicy(executor="batch")

KERNELS = [
    "numpy",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            not HAVE_NUMBA, reason="numba is not installed"
        ),
    ),
]


@contextlib.contextmanager
def fuse_cap(value: int):
    """Temporarily cap the fused-window size (1 = one step per kernel call)."""
    import repro.core.batch as batch_module

    saved = batch_module.MAX_FUSE_WINDOW
    batch_module.MAX_FUSE_WINDOW = value
    try:
        yield
    finally:
        batch_module.MAX_FUSE_WINDOW = saved


RUN_FIELDS = (
    "outcome",
    "label_rounds",
    "output_rounds",
    "steps_executed",
    "cycle_start",
    "cycle_length",
)
FAULT_FIELDS = (
    "outcome",
    "recovery_rounds",
    "output_recovery_rounds",
    "cycle_start",
    "cycle_length",
    "faults_fired",
    "fault_times",
    "last_fault_time",
    "steps_executed",
)


def assert_reports_equal(serial, batch, fields=RUN_FIELDS):
    for field in fields:
        assert getattr(serial, field) == getattr(batch, field), (
            field,
            serial.describe(),
            batch.describe(),
        )
    assert serial.final == batch.final


# -- random case generators --------------------------------------------------


def random_tabular_protocol(rng: random.Random) -> StatelessProtocol:
    """A complete random lookup-table protocol on a small ring or clique."""
    if rng.random() < 0.5:
        topology = unidirectional_ring(rng.randrange(3, 7))
    else:
        topology = clique(rng.randrange(3, 5))
    labels = tuple(range(rng.randrange(2, 4)))
    space = ExplicitLabelSpace(labels)
    reactions = []
    for i in range(topology.n):
        in_edges = topology.in_edges(i)
        out_edges = topology.out_edges(i)
        table = {}
        for combo in product(labels, repeat=len(in_edges)):
            for x in (0, 1):
                table[(combo, x)] = (
                    tuple(rng.choice(labels) for _ in out_edges),
                    rng.randrange(3),
                )
        reactions.append(TabularReaction(in_edges, out_edges, table))
    return StatelessProtocol(topology, space, reactions, name="random-tabular")


def random_schedule(rng: random.Random, n: int):
    kind = rng.randrange(6)
    if kind == 0:
        return SynchronousSchedule(n)
    if kind == 1:
        return RoundRobinSchedule(n)
    if kind == 2:
        return RandomRFairSchedule(
            n, r=rng.randrange(1, 4), seed=rng.randrange(1 << 20), p=0.4
        )
    if kind == 3:
        steps = [
            rng.sample(range(n), rng.randrange(1, n + 1))
            for _ in range(rng.randrange(1, 6))
        ]
        return ExplicitSchedule(n, steps)
    if kind == 4:
        steps = [
            rng.sample(range(n), rng.randrange(1, n + 1))
            for _ in range(rng.randrange(1, 25))
        ]
        return ExplicitSchedule(n, steps, cycle=False)
    prefix = [
        rng.sample(range(n), rng.randrange(1, n + 1))
        for _ in range(rng.randrange(0, 4))
    ]
    loop = [
        rng.sample(range(n), rng.randrange(1, n + 1))
        for _ in range(rng.randrange(1, 4))
    ]
    return LassoSchedule(n, prefix, loop)


def random_fault_model(rng: random.Random, topology, space):
    kind = rng.randrange(4)
    edges = list(topology.edges)
    labels = list(space)
    if kind == 0:
        return RandomCorruption(rng.random(), seed=rng.randrange(1 << 20))
    if kind == 1:
        chosen = rng.sample(edges, rng.randrange(1, len(edges) + 1))
        return TargetedCorruption(chosen, seed=rng.randrange(1 << 20))
    if kind == 2:
        chosen = rng.sample(edges, rng.randrange(1, 3))
        return StuckAtFault(chosen, rng.choice(labels))
    return ComposedFault(
        [random_fault_model(rng, topology, space) for _ in range(rng.randrange(1, 3))]
    )


def random_fault_plan(rng: random.Random, topology, space, horizon: int):
    kind = rng.randrange(6)
    model = random_fault_model(rng, topology, space)
    if kind == 0:
        return NoFaults()
    if kind == 1:
        return OneShotFault(rng.randrange(horizon), model)
    if kind == 2:
        times = sorted(
            rng.sample(range(horizon), rng.randrange(1, min(4, horizon)))
        )
        return BurstFault(times, model)
    if kind == 3:
        start = rng.randrange(horizon - 1)
        return WindowFault(start, rng.randrange(start + 1, horizon), model)
    if kind == 4:
        start = rng.randrange(horizon)
        return PeriodicFault(rng.randrange(1, 8), model, start=start)
    return ComposedFaultSchedule(
        [
            random_fault_plan(rng, topology, space, horizon)
            for _ in range(rng.randrange(1, 3))
        ]
    )


def random_rows(rng: random.Random, protocol, count: int):
    topology = protocol.topology
    labels = list(protocol.label_space)
    labelings = [
        Labeling(
            topology, tuple(rng.choice(labels) for _ in range(topology.m))
        )
        for _ in range(count)
    ]
    inputs = [
        tuple(rng.randrange(2) for _ in range(topology.n))
        for _ in range(count)
    ]
    schedules = [random_schedule(rng, topology.n) for _ in range(count)]
    return labelings, inputs, schedules


# -- property-style equivalence ----------------------------------------------


class TestRunEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_cases_match_serial(self, kernel, seed):
        rng = random.Random(seed)
        protocol = random_tabular_protocol(rng)
        count = rng.randrange(2, 7)
        max_steps = rng.choice([4, 30, 120])
        labelings, inputs, schedules = random_rows(rng, protocol, count)
        serial = [
            Simulator(protocol, inputs[b]).run(
                labelings[b], schedules[b], max_steps=max_steps
            )
            for b in range(count)
        ]
        batch = BatchSimulator(protocol, inputs, kernel=kernel).run_batch(
            labelings, schedules, max_steps=max_steps
        )
        for s, r in zip(serial, batch, strict=True):
            assert_reports_equal(s, r)

    @pytest.mark.parametrize("kernel", KERNELS)
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_fault_plans_match_serial(self, kernel, seed):
        rng = random.Random(seed)
        protocol = random_tabular_protocol(rng)
        space = protocol.label_space
        count = rng.randrange(2, 6)
        max_steps = rng.choice([20, 80])
        labelings, inputs, schedules = random_rows(rng, protocol, count)
        plans = [
            random_fault_plan(rng, protocol.topology, space, max_steps)
            for _ in range(count)
        ]
        serial = [
            Simulator(protocol, inputs[b]).run_with_faults(
                labelings[b], schedules[b], plans[b], max_steps=max_steps
            )
            for b in range(count)
        ]
        batch = BatchSimulator(protocol, inputs, kernel=kernel).run_batch_with_faults(
            labelings, schedules, plans, max_steps=max_steps
        )
        for s, r in zip(serial, batch, strict=True):
            assert_reports_equal(s, r, FAULT_FIELDS)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_seed_stress(self, kernel):
        """600-seed stress: light random cases, serial vs batch, per kernel."""
        for seed in range(600):
            rng = random.Random(seed)
            protocol = random_tabular_protocol(rng)
            count = 2
            max_steps = rng.choice([6, 14])
            labelings, inputs, schedules = random_rows(rng, protocol, count)
            serial = [
                Simulator(protocol, inputs[b]).run(
                    labelings[b], schedules[b], max_steps=max_steps
                )
                for b in range(count)
            ]
            batch = BatchSimulator(protocol, inputs, kernel=kernel).run_batch(
                labelings, schedules, max_steps=max_steps
            )
            for s, r in zip(serial, batch, strict=True):
                assert_reports_equal(s, r)

    def test_initial_outputs_and_shared_schedule(self):
        rng = random.Random(5)
        protocol = random_tabular_protocol(rng)
        n = protocol.n
        count = 4
        labelings, inputs, _ = random_rows(rng, protocol, count)
        outputs = [tuple(rng.randrange(3) for _ in range(n)) for _ in range(count)]
        schedule = SynchronousSchedule(n)
        serial = [
            Simulator(protocol, inputs[b]).run(
                labelings[b],
                schedule,
                max_steps=60,
                initial_outputs=outputs[b],
            )
            for b in range(count)
        ]
        batch = BatchSimulator(protocol, inputs).run_batch(
            labelings, schedule, max_steps=60, initial_outputs=outputs
        )
        for s, r in zip(serial, batch, strict=True):
            assert_reports_equal(s, r)


# -- sweep-level equivalence -------------------------------------------------


def _xor_ring_protocol(n: int) -> StatelessProtocol:
    topology = unidirectional_ring(n)

    def make(i):
        def fn(incoming, x):
            (value,) = incoming.values()
            return value ^ x, value

        return UniformReaction(topology.out_edges(i), fn)

    return StatelessProtocol(
        topology, binary(), [make(i) for i in range(n)], name=f"xor-ring({n})"
    )


class TestSweepEquivalence:
    def _cases(self, protocol, count, seed):
        rng = random.Random(seed)
        topology = protocol.topology
        return [
            SweepCase(
                tuple(rng.randrange(2) for _ in range(topology.n)),
                Labeling(
                    topology,
                    tuple(rng.randrange(2) for _ in range(topology.m)),
                ),
                tag=("case", k),
            )
            for k in range(count)
        ]

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_run_sweep_batch_equals_serial(self, seed, kernel):
        protocol = _xor_ring_protocol(8)
        cases = self._cases(protocol, 16, seed)

        def factory(index, case):
            return RandomRFairSchedule(8, r=3, seed=1000 * seed + index)

        serial = run_sweep(protocol, cases, factory, max_steps=120)
        batch = run_sweep(
            protocol,
            cases,
            factory,
            max_steps=120,
            policy=ExecutionPolicy(executor="batch", kernel=kernel),
        )
        assert serial == batch
        assert serial.outcome_counts == batch.outcome_counts
        assert serial.round_histogram() == batch.round_histogram()
        assert [r.index for r in batch] == list(range(len(cases)))
        assert [r.tag for r in batch] == [case.tag for case in cases]

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("criterion", ["label", "orbit"])
    def test_resilience_sweep_batch_equals_serial(self, criterion, kernel):
        protocol = _xor_ring_protocol(7)
        cases = self._cases(protocol, 12, 3)
        edges = protocol.topology.edges

        def schedule_factory(index, case):
            return RandomRFairSchedule(7, r=3, seed=index)

        def fault_factory(index, case):
            if index % 4 == 0:
                return NoFaults()
            if index % 4 == 1:
                return BurstFault([3, 11], RandomCorruption(0.5, seed=index))
            if index % 4 == 2:
                return WindowFault(2, 6, StuckAtFault([edges[0]], 1))
            return OneShotFault(
                5, TargetedCorruption([edges[1], edges[2]], seed=index)
            )

        serial = run_resilience_sweep(
            protocol,
            cases,
            schedule_factory,
            fault_factory,
            max_steps=100,
            recovered=criterion,
        )
        batch = run_resilience_sweep(
            protocol,
            cases,
            schedule_factory,
            fault_factory,
            max_steps=100,
            recovered=criterion,
            policy=ExecutionPolicy(executor="batch", kernel=kernel),
        )
        assert serial == batch
        assert serial.recovery_rate == batch.recovery_rate
        assert serial.recovery_histogram() == batch.recovery_histogram()

    def test_chunked_batch_sweep_equals_serial(self, monkeypatch):
        # Force several sub-batches (chunk boundaries inside the case list)
        # and check the stitched report is still equal, indexes included.
        monkeypatch.setattr("repro.core.batch.SWEEP_CHUNK_ROWS", 5)
        protocol = _xor_ring_protocol(6)
        cases = self._cases(protocol, 17, 7)

        def factory(index, case):
            return RandomRFairSchedule(6, r=3, seed=index)

        def fault_factory(index, case):
            if index % 3 == 0:
                return NoFaults()
            return OneShotFault(4, RandomCorruption(0.5, seed=index))

        serial = run_sweep(protocol, cases, factory, max_steps=90)
        batch = run_sweep(
            protocol, cases, factory, max_steps=90, policy=BATCH
        )
        assert serial == batch
        assert [r.index for r in batch] == list(range(len(cases)))
        serial_res = run_resilience_sweep(
            protocol, cases, factory, fault_factory, max_steps=90
        )
        batch_res = run_resilience_sweep(
            protocol,
            cases,
            factory,
            fault_factory,
            max_steps=90,
            policy=BATCH,
        )
        assert serial_res == batch_res

    def test_unknown_executor_rejected(self):
        protocol = _xor_ring_protocol(5)
        cases = self._cases(protocol, 2, 0)
        with pytest.raises(ValidationError, match="unknown executor"):
            run_sweep(
                protocol,
                cases,
                lambda i, c: SynchronousSchedule(5),
                policy=ExecutionPolicy(executor="gpu"),
            )
        with pytest.raises(ValidationError, match="unknown executor"):
            run_resilience_sweep(
                protocol,
                cases,
                lambda i, c: SynchronousSchedule(5),
                lambda i, c: NoFaults(),
                policy=ExecutionPolicy(executor="gpu"),
            )


# -- kernel selection ---------------------------------------------------------


class TestKernelSelection:
    def test_unknown_kernel_rejected(self):
        protocol = _xor_ring_protocol(4)
        with pytest.raises(ValidationError, match="unknown kernel"):
            BatchSimulator(protocol, [(0,) * 4], kernel="gpu")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_numba_kernel_without_numba_is_an_error(self):
        protocol = _xor_ring_protocol(4)
        with pytest.raises(ValidationError, match="requires numba"):
            BatchSimulator(protocol, [(0,) * 4], kernel="numba")

    def test_auto_resolves_to_an_available_kernel(self):
        protocol = _xor_ring_protocol(4)
        simulator = BatchSimulator(protocol, [(0,) * 4])
        assert simulator.kernel == ("numba" if HAVE_NUMBA else "numpy")
        forced = BatchSimulator(protocol, [(0,) * 4], kernel="numpy")
        assert forced.kernel == "numpy"

    def test_sweep_kernel_requires_batch_executor(self):
        protocol = _xor_ring_protocol(4)
        cases = [SweepCase((0,) * 4, Labeling.uniform(protocol.topology, 0))]

        def factory(index, case):
            return SynchronousSchedule(4)

        with pytest.raises(ValidationError, match="executor='batch'"):
            run_sweep(
                protocol, cases, factory, policy=ExecutionPolicy(kernel="numpy")
            )
        with pytest.raises(ValidationError, match="executor='batch'"):
            run_resilience_sweep(
                protocol,
                cases,
                factory,
                lambda i, c: NoFaults(),
                policy=ExecutionPolicy(kernel="numpy"),
            )


# -- fused windows ------------------------------------------------------------


class TestFusedWindows:
    """Fused k-step windows must equal k single steps, case for case."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=15, deadline=None)
    def test_fused_equals_single_step_windows(self, kernel, seed):
        rng = random.Random(seed)
        protocol = random_tabular_protocol(rng)
        count = rng.randrange(2, 6)
        max_steps = rng.choice([30, 120])
        labelings, inputs, schedules = random_rows(rng, protocol, count)
        fused = BatchSimulator(protocol, inputs, kernel=kernel).run_batch(
            labelings, schedules, max_steps=max_steps
        )
        with fuse_cap(1):
            single = BatchSimulator(protocol, inputs, kernel=kernel).run_batch(
                labelings, schedules, max_steps=max_steps
            )
        for f, s in zip(fused, single, strict=True):
            assert_reports_equal(s, f)

    @pytest.mark.parametrize("kernel", KERNELS)
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=15, deadline=None)
    def test_faults_split_fused_windows(self, kernel, seed):
        # Fault plans fire at arbitrary steps, so plans landing inside a
        # fused window force a split; the split must be invisible in the
        # report.
        rng = random.Random(seed)
        protocol = random_tabular_protocol(rng)
        space = protocol.label_space
        count = rng.randrange(2, 5)
        max_steps = 80
        labelings, inputs, schedules = random_rows(rng, protocol, count)
        plans = [
            random_fault_plan(rng, protocol.topology, space, max_steps)
            for _ in range(count)
        ]
        fused = BatchSimulator(protocol, inputs, kernel=kernel).run_batch_with_faults(
            labelings, schedules, plans, max_steps=max_steps
        )
        with fuse_cap(1):
            single = BatchSimulator(
                protocol, inputs, kernel=kernel
            ).run_batch_with_faults(
                labelings, schedules, plans, max_steps=max_steps
            )
        for f, s in zip(fused, single, strict=True):
            assert_reports_equal(s, f, FAULT_FIELDS)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_finished_rows_leave_mid_window(self, kernel):
        # A forwarding ring: the all-zeros labeling is stable immediately,
        # a single token circulates forever, and intermediate labelings
        # settle at different times — rows retire mid-window while others
        # keep stepping.
        n = 6
        topology = unidirectional_ring(n)

        def make(i):
            def fn(incoming, x):
                (value,) = incoming.values()
                return value & x, value

            return UniformReaction(topology.out_edges(i), fn)

        protocol = StatelessProtocol(
            topology, binary(), [make(i) for i in range(n)], name="and-ring"
        )
        rng = random.Random(13)
        labelings = [
            Labeling(topology, tuple(rng.randrange(2) for _ in range(n)))
            for _ in range(8)
        ]
        inputs = [tuple(rng.randrange(2) for _ in range(n)) for _ in range(8)]
        schedule = SynchronousSchedule(n)
        simulator = BatchSimulator(protocol, inputs, kernel=kernel)
        batch = simulator.run_batch(labelings, schedule, max_steps=100)
        with fuse_cap(1):
            single = BatchSimulator(
                protocol, inputs, kernel=kernel
            ).run_batch(labelings, schedule, max_steps=100)
        settle_steps = set()
        for b, (labeling, report) in enumerate(zip(labelings, batch, strict=True)):
            serial = Simulator(protocol, inputs[b]).run(
                labeling, schedule, max_steps=100
            )
            assert_reports_equal(serial, report)
            assert_reports_equal(serial, single[b])
            settle_steps.add(report.steps_executed)
        # The point of the test: rows genuinely finished at distinct times.
        assert len(settle_steps) > 1


# -- packed interner ----------------------------------------------------------


class TestPackedInterner:
    def test_packed_dtype_ladder(self):
        assert packed_dtype(2) is np.uint8
        assert packed_dtype(1 << 8) is np.uint8
        assert packed_dtype((1 << 8) + 1) is np.uint16
        assert packed_dtype(1 << 16) is np.uint16
        assert packed_dtype((1 << 16) + 1) is np.uint32
        assert packed_dtype((1 << 32) + 1) is np.int64
        assert dtype_capacity(np.uint8) == 1 << 8
        assert dtype_capacity(np.uint16) == 1 << 16

    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.int64])
    def test_bulk_encode_accepts_narrow_dtypes(self, dtype):
        interner = LabelInterner(range(6))
        rows = np.array([[0, 5, 2], [3, 1, 4]], dtype=dtype)
        bulk = interner.bulk_encode(rows)
        assert bulk is not None
        # Emitted in the smallest dtype covering the interner, with no
        # int64 round trip for already-narrow input.
        assert bulk.dtype == np.uint8
        for encoded, row in zip(bulk, rows, strict=True):
            assert interner.decode_values(encoded) == tuple(row.tolist())

    def test_bulk_encode_explicit_dtype_and_u16_round_trip(self):
        interner = LabelInterner(range(300))
        rows = [[0, 299, 257], [256, 1, 2]]
        bulk = interner.bulk_encode(rows)
        assert bulk is not None
        assert bulk.dtype == np.uint16
        wide = interner.bulk_encode(rows, dtype=np.int64)
        assert wide.dtype == np.int64
        assert (bulk == wide).all()
        assert interner.decode_values(bulk[0]) == (0, 299, 257)

    def test_bulk_encode_never_interns_or_overflows(self):
        interner = LabelInterner(range(4))
        # Codes outside the interned population: refuse (never intern, never
        # wrap into the packed dtype).
        assert interner.bulk_encode([[0, 4]]) is None
        assert interner.bulk_encode([[-1, 0]]) is None
        assert interner.size == 4
        # Non-identity interners take the per-element path.
        assert LabelInterner(["a", "b"]).bulk_encode([[0, 1]]) is None
        # Ragged or non-integer rows: ineligible, not an exception.
        assert interner.bulk_encode([[0, 1], [2]]) is None
        assert interner.bulk_encode([[0.5, 1.0]]) is None

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_mid_run_widening_never_overflows(self, kernel):
        # A counter ring whose labels escape the declared 2-label space and
        # keep growing: the interner crosses the u8 capacity mid-run, so the
        # packed code arrays must widen (never wrap) to stay serial-equal.
        n = 3
        topology = unidirectional_ring(n)

        def make(i):
            def fn(incoming, x):
                (value,) = incoming.values()
                return value + 1, value

            return UniformReaction(topology.out_edges(i), fn)

        protocol = StatelessProtocol(
            topology,
            ExplicitLabelSpace((0, 1)),
            [make(i) for i in range(n)],
            name="counter-ring",
        )
        labelings = [
            Labeling(topology, (0, 1, 0)),
            Labeling(topology, (1, 1, 1)),
        ]
        schedule = SynchronousSchedule(n)
        simulator = BatchSimulator(protocol, [(0,) * n] * 2, kernel=kernel)
        batch = simulator.run_batch(labelings, schedule, max_steps=300)
        for labeling, report in zip(labelings, batch, strict=True):
            serial = Simulator(protocol, (0,) * n).run(
                labeling, schedule, max_steps=300
            )
            assert_reports_equal(serial, report)
        # The run genuinely outgrew the u8 code range.
        assert simulator._interner.size > dtype_capacity(np.uint8)


# -- lift tiers and fallbacks ------------------------------------------------


class TestLiftTiers:
    def test_small_space_protocol_fully_lifted(self):
        protocol = _xor_ring_protocol(6)
        simulator = BatchSimulator(protocol, [(0,) * 6, (1, 0, 0, 0, 0, 0)])
        assert simulator.lifted_nodes == tuple(range(6))

    def test_huge_space_falls_back_to_python_apply(self):
        n = 4
        topology = unidirectional_ring(n)
        space = BitStrings(20)

        def make(i):
            def fn(incoming, x):
                (value,) = incoming.values()
                return tuple(1 - bit for bit in value), sum(value)

            return UniformReaction(topology.out_edges(i), fn)

        protocol = StatelessProtocol(
            topology, space, [make(i) for i in range(n)], name="big-space"
        )
        rng = random.Random(3)
        labelings = [
            Labeling(
                topology, tuple(space.sample(rng) for _ in range(topology.m))
            )
            for _ in range(3)
        ]
        simulator = BatchSimulator(protocol, [(0,) * n] * 3)
        assert simulator.lifted_nodes == ()
        schedule = SynchronousSchedule(n)
        batch = simulator.run_batch(labelings, schedule, max_steps=40)
        for labeling, report in zip(labelings, batch, strict=True):
            serial = Simulator(protocol, (0,) * n).run(
                labeling, schedule, max_steps=40
            )
            assert_reports_equal(serial, report)

    def test_batch_form_hook_and_cache(self):
        protocol = _xor_ring_protocol(5)
        compiled = compile_protocol(protocol)
        batch = compiled.batch_form()
        assert batch is batch_compile(protocol)
        assert batch is batch_compile(compiled)
        # Distinct table budgets coexist in the cache instead of evicting
        # each other.
        small = compiled.batch_form(max_table_size=1)
        assert small is not batch
        assert compiled.batch_form() is batch
        assert compiled.batch_form(max_table_size=1) is small

    def test_max_table_size_gates_the_lift(self):
        protocol = _xor_ring_protocol(5)
        compiled = compile_protocol(protocol)
        batch = batch_compile(compiled, max_table_size=1)
        simulator = BatchSimulator(
            protocol, [(0,) * 5] * 2, compiled=compiled, batch_compiled=batch
        )
        assert simulator.lifted_nodes == ()
        rng = random.Random(0)
        labelings = [
            Labeling(
                protocol.topology,
                tuple(rng.randrange(2) for _ in range(protocol.topology.m)),
            )
            for _ in range(2)
        ]
        schedule = RoundRobinSchedule(5)
        batch_reports = simulator.run_batch(labelings, schedule, max_steps=60)
        for labeling, report in zip(labelings, batch_reports, strict=True):
            serial = Simulator(protocol, (0,) * 5).run(
                labeling, schedule, max_steps=60
            )
            assert_reports_equal(serial, report)

    def test_out_of_space_label_demotes_lifted_nodes(self):
        n = 5
        topology = unidirectional_ring(n)

        def make(i):
            if i == 0:
                # Emits label 2, which is outside the declared binary space.
                def escape(incoming, x):
                    (value,) = incoming.values()
                    return (2 if value == 1 else 0), value

                return UniformReaction(topology.out_edges(i), escape)

            def forward(incoming, x):
                (value,) = incoming.values()
                return value, value

            return UniformReaction(topology.out_edges(i), forward)

        protocol = StatelessProtocol(
            topology, binary(), [make(i) for i in range(n)], name="escaper"
        )
        simulator = BatchSimulator(protocol, [(0,) * n] * 3)
        # Node 0 cannot be lifted (its table would leave the space)...
        assert 0 not in simulator.lifted_nodes
        assert set(simulator.lifted_nodes) == {1, 2, 3, 4}
        rng = random.Random(9)
        labelings = [
            Labeling(
                topology, tuple(rng.randrange(2) for _ in range(topology.m))
            )
            for _ in range(3)
        ]
        schedule = RoundRobinSchedule(n)
        batch = simulator.run_batch(labelings, schedule, max_steps=50)
        # ... and once label 2 entered the interner, every node was demoted.
        assert simulator.lifted_nodes == ()
        for labeling, report in zip(labelings, batch, strict=True):
            serial = Simulator(protocol, (0,) * n).run(
                labeling, schedule, max_steps=50
            )
            assert_reports_equal(serial, report)

    def test_stateful_protocol_uses_fallback(self):
        n = 4
        topology = unidirectional_ring(n)

        def make(i):
            def fn(incoming, own, x):
                (value,) = incoming.values()
                (mine,) = own.values()
                return {
                    edge: value ^ mine for edge in topology.out_edges(i)
                }, mine

            return LambdaStatefulReaction(fn)

        protocol = StatefulProtocol(
            topology, binary(), [make(i) for i in range(n)], name="stateful"
        )
        simulator = BatchSimulator(protocol, [(0,) * n] * 2)
        assert simulator.lifted_nodes == ()
        rng = random.Random(11)
        labelings = [
            Labeling(
                topology, tuple(rng.randrange(2) for _ in range(topology.m))
            )
            for _ in range(2)
        ]
        schedule = SynchronousSchedule(n)
        batch = simulator.run_batch(labelings, schedule, max_steps=40)
        for labeling, report in zip(labelings, batch, strict=True):
            serial = Simulator(protocol, (0,) * n).run(
                labeling, schedule, max_steps=40
            )
            assert_reports_equal(serial, report)

    def test_partial_table_raises_like_serial(self):
        topology = unidirectional_ring(3)
        space = binary()
        reactions = []
        for i in range(3):
            in_edges = topology.in_edges(i)
            out_edges = topology.out_edges(i)
            # Only the all-zeros row exists; any 1 on the wire is undefined.
            table = {((0,), 0): ((0,), 0)}
            reactions.append(TabularReaction(in_edges, out_edges, table))
        protocol = StatelessProtocol(topology, space, reactions, name="partial")
        bad = Labeling(topology, (1, 0, 0))
        schedule = SynchronousSchedule(3)
        with pytest.raises(ValidationError, match="no row"):
            Simulator(protocol, (0,) * 3).run(bad, schedule, max_steps=5)
        simulator = BatchSimulator(protocol, [(0,) * 3])
        with pytest.raises(ValidationError, match="no row"):
            simulator.run_batch([bad], schedule, max_steps=5)

    def test_batch_validates_row_counts(self):
        protocol = _xor_ring_protocol(4)
        simulator = BatchSimulator(protocol, [(0,) * 4] * 2)
        labeling = Labeling.uniform(protocol.topology, 0)
        with pytest.raises(ValidationError):
            simulator.run_batch([labeling], SynchronousSchedule(4))
        with pytest.raises(ValidationError):
            BatchSimulator(protocol, [(0,) * 3])


# -- fire_batch contract -----------------------------------------------------


class TestFireBatch:
    @pytest.mark.parametrize("step", [0, 7, 123])
    def test_models_fire_batch_equals_apply(self, step):
        protocol = _xor_ring_protocol(6)
        topology = protocol.topology
        space = protocol.label_space
        rng = random.Random(step)
        edges = list(topology.edges)
        models = [
            RandomCorruption(0.6, seed=17),
            TargetedCorruption(edges[:3], seed=21),
            TargetedCorruption(edges[1:3], labels={edges[1]: 1}, seed=4),
            StuckAtFault(edges[2:4], 1),
            ComposedFault(
                [RandomCorruption(0.3, seed=9), StuckAtFault([edges[0]], 0)]
            ),
        ]
        rows = [
            tuple(rng.randrange(2) for _ in range(topology.m))
            for _ in range(5)
        ]
        for model in models:
            interner = LabelInterner(iter(space))
            codes = np.array(
                [interner.encode_values(row) for row in rows], dtype=np.int64
            )
            model.fire_batch(
                codes, list(range(len(rows))), topology, space, interner, step
            )
            for b, row in enumerate(rows):
                expected = model.apply(row, topology, space, step)
                assert interner.decode_values(codes[b]) == tuple(expected), (
                    model,
                    b,
                )

    def test_interner_round_trip(self):
        interner = LabelInterner(["a", "b"])
        assert interner.encode("a") == 0
        assert interner.encode("c") == 2
        assert interner.size == 3
        values = ("c", "a", "b", "a")
        assert interner.decode_values(interner.encode_values(values)) == values
