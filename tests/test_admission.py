"""Tests for service admission control.

Deterministic accept/reject/queue decisions from predicted cost, the
cache-hit-aware plan estimator, and the end-to-end service flows: an
over-budget plan is rejected (and recorded), the identical plan is admitted
once the cache is warm, and a queue-held plan is released when completed
jobs warm enough of its cases.
"""

import json

import pytest

pytest.importorskip("sympy")

from repro.analysis import run_sweep
from repro.analysis.costmodel import (
    DEFAULT_CACHE_HIT_WORK,
    estimate_sweep_cost,
)
from repro.exceptions import JobError, ValidationError
from repro.policy import ExecutionPolicy
from repro.service import (
    AdmissionPolicy,
    InMemoryCache,
    JobState,
    SweepService,
    plan_sweep,
    predict_plan_cost,
)

from tests.test_service_jobs import _plan, _sync

#: Per-case model work for `_plan()`'s shape: a unidirectional 4-ring
#: (in-degree 1) at 60 steps — n*d*S = 4*1*60.
UNIT_WORK = 240.0
HIT = DEFAULT_CACHE_HIT_WORK


def _estimate(cases=8, cached=0, **kwargs):
    return estimate_sweep_cost(
        cases=cases,
        nodes=4,
        degree=1,
        max_steps=60,
        cached_cases=cached,
        **kwargs,
    )


class TestAdmissionPolicy:
    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValidationError, match="max_work and/or"):
            AdmissionPolicy()

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValidationError, match="max_work must be positive"):
            AdmissionPolicy(max_work=0)
        with pytest.raises(ValidationError, match="max_seconds"):
            AdmissionPolicy(max_seconds=-1.0)

    def test_over_budget_action_is_validated(self):
        with pytest.raises(ValidationError, match="unknown over_budget"):
            AdmissionPolicy(max_work=1.0, over_budget="shrug")

    def test_within_budget_accepts(self):
        decision = AdmissionPolicy(max_work=10_000).decide(_estimate())
        assert decision.action == "accept"
        assert "within budget" in decision.reason
        assert decision.predicted_work == 8 * UNIT_WORK
        assert decision.cases == 8
        assert decision.cached_cases == 0

    def test_over_work_budget_rejects_with_the_numbers(self):
        decision = AdmissionPolicy(max_work=500).decide(_estimate())
        assert decision.action == "reject"
        assert "predicted work 1,920 > budget 500" in decision.reason

    def test_over_seconds_budget_rejects(self):
        # engine.compiled cold: 1920 units * 4e-7 s/unit ~ 0.77 ms
        decision = AdmissionPolicy(max_seconds=1e-6).decide(_estimate())
        assert decision.action == "reject"
        assert "predicted time" in decision.reason

    def test_queue_action_holds_instead(self):
        policy = AdmissionPolicy(max_work=500, over_budget="queue")
        assert policy.decide(_estimate()).action == "queue"

    def test_warm_cases_are_mentioned_in_the_refusal(self):
        decision = AdmissionPolicy(max_work=500).decide(_estimate(cached=3))
        assert decision.action == "reject"
        assert "after discounting 3/8 warm cases" in decision.reason

    def test_decisions_are_pure_functions_of_the_inputs(self):
        policy = AdmissionPolicy(max_work=500)
        assert policy.decide(_estimate()) == policy.decide(_estimate())

    def test_record_is_json_able(self):
        decision = AdmissionPolicy(max_work=500).decide(_estimate(cached=2))
        record = json.loads(json.dumps(decision.record()))
        assert record["action"] == "reject"
        assert record["cases"] == 8
        assert record["cached_cases"] == 2
        assert record["predicted_work"] == 6 * UNIT_WORK + 2 * HIT

    def test_describe(self):
        policy = AdmissionPolicy(max_work=500, over_budget="queue")
        assert "max_work=500" in policy.describe()
        assert "'queue'" in policy.describe()


class TestPredictPlanCost:
    def test_cold_plan_prices_every_case(self):
        plan, _, _ = _plan()
        estimate = predict_plan_cost(plan)
        assert estimate.cases == 8
        assert estimate.cached_cases == 0
        assert estimate.unit_work == UNIT_WORK
        assert estimate.predicted_work == 8 * UNIT_WORK
        assert estimate.layer == "engine.compiled"

    def test_policy_defaults_to_the_plans_attached_policy(self):
        plan, protocol, cases = _plan()
        batched = plan_sweep(
            protocol,
            cases,
            _sync,
            max_steps=60,
            policy=ExecutionPolicy(executor="batch"),
        )
        assert predict_plan_cost(batched).layer == "batch.fused"
        # ... and an explicit policy argument wins over the attached one.
        serial = predict_plan_cost(batched, ExecutionPolicy())
        assert serial.layer == "engine.compiled"

    def test_cache_probe_discounts_stored_cases(self):
        plan, protocol, cases = _plan()
        cache = InMemoryCache()
        with SweepService(cache=cache) as service:
            sub_plan = plan_sweep(protocol, cases[:3], _sync, max_steps=60)
            service.result(service.submit(sub_plan), timeout=30)
        # Warm coverage is by content fingerprint, not case position: a
        # duplicate labeling later in the plan counts as warm too.
        warm_keys = set(sub_plan.case_fingerprints())
        warm = sum(1 for key in plan.case_fingerprints() if key in warm_keys)
        assert warm >= 3
        estimate = predict_plan_cost(plan, cache=cache)
        assert estimate.cached_cases == warm
        assert estimate.predicted_work == (8 - warm) * UNIT_WORK + warm * HIT

    def test_probing_does_not_skew_cache_statistics(self):
        plan, _, _ = _plan()
        cache = InMemoryCache()
        before = cache.stats
        predict_plan_cost(plan, cache=cache)
        after = cache.stats
        assert (after.hits, after.misses) == (before.hits, before.misses)


#: Budget between the warm price (8 hits = 400) and the cold price (1920):
#: the same plan is over budget cold and within budget warm.
REJECT_THEN_ADMIT = AdmissionPolicy(max_work=8 * HIT + UNIT_WORK / 2)


class TestServiceAdmission:
    def test_over_budget_plan_is_rejected_and_recorded(self, tmp_path):
        plan, _, _ = _plan()
        with SweepService(
            admission=REJECT_THEN_ADMIT, records_dir=tmp_path
        ) as service:
            job_id = service.submit(plan)
            status = service.status(job_id)
            assert status.state is JobState.REJECTED
            assert status.admission == "reject"
            assert "predicted work" in status.error
            with pytest.raises(JobError, match="was rejected"):
                service.result(job_id, timeout=5)
            with pytest.raises(JobError, match="was rejected"):
                list(service.stream(job_id))
            # The rejection is queryable and recorded like any other outcome.
            assert [s.state for s in service.jobs()] == [JobState.REJECTED]
        (record_path,) = tmp_path.glob("JOB_*.json")
        entries = json.loads(record_path.read_text())["entries"]
        assert entries["state"] == "rejected"
        assert entries["admission"]["action"] == "reject"
        assert entries["admission"]["predicted_work"] == 8 * UNIT_WORK

    def test_same_plan_is_admitted_once_the_cache_is_warm(self):
        plan, protocol, cases = _plan()
        direct = run_sweep(protocol, cases, _sync, max_steps=60)
        cache = InMemoryCache()
        with SweepService(cache=cache, admission=REJECT_THEN_ADMIT) as service:
            cold_id = service.submit(plan)
            assert service.status(cold_id).state is JobState.REJECTED
            # Warm the shared cache through an unbudgeted service...
            with SweepService(cache=cache) as warmup:
                warmup.result(warmup.submit(plan), timeout=30)
            # ... and the identical plan now fits the budget.
            warm_id = service.submit(plan)
            assert service.result(warm_id, timeout=30) == direct
            status = service.status(warm_id)
            assert status.state is JobState.DONE
            assert status.admission == "accept"

    def test_queue_held_plan_is_released_by_cache_warming(self):
        plan, protocol, cases = _plan()
        direct = run_sweep(protocol, cases, _sync, max_steps=60)
        # Admits a 4-case sub-plan cold (960) and the full plan once half
        # its cases are warm (4*240 + 4*50 = 1160), but not cold (1920).
        policy = AdmissionPolicy(max_work=1_200, over_budget="queue")
        with SweepService(admission=policy) as service:
            held_id = service.submit(plan)
            status = service.status(held_id)
            assert status.state is JobState.PENDING
            assert status.admission == "queue"

            sub_plan = plan_sweep(protocol, cases[:4], _sync, max_steps=60)
            sub_id = service.submit(sub_plan)
            assert service.status(sub_id).admission == "accept"
            service.result(sub_id, timeout=30)

            # The sub-plan's completion warmed half the held plan's cases;
            # the post-job review re-prices and releases it.
            assert service.result(held_id, timeout=30) == direct
            released = service.status(held_id)
            assert released.state is JobState.DONE
            assert released.admission == "accept"

    def test_queue_held_plan_is_released_by_external_cache_warming(self):
        # The warming job runs on a *different* service sharing the cache,
        # so no local completion triggers the held-job review — the blocked
        # result() call's periodic repricing must release the job instead.
        plan, protocol, cases = _plan()
        cache = InMemoryCache()
        cold = predict_plan_cost(plan, cache=cache)
        policy = AdmissionPolicy(
            max_work=cold.predicted_work / 2, over_budget="queue"
        )
        with SweepService(cache=cache, admission=policy) as service:
            held_id = service.submit(plan)
            assert service.status(held_id).admission == "queue"
            with SweepService(cache=cache) as warmer:
                computed = warmer.result(warmer.submit(plan), timeout=30)
            assert service.result(held_id, timeout=30) == computed
            assert service.status(held_id).admission == "accept"

    def test_close_cancels_held_jobs(self):
        plan, _, _ = _plan()
        policy = AdmissionPolicy(max_work=1.0, over_budget="queue")
        service = SweepService(admission=policy)
        try:
            held_id = service.submit(plan)
            assert service.status(held_id).state is JobState.PENDING
        finally:
            service.close()
        assert service.status(held_id).state is JobState.CANCELLED
        with pytest.raises(JobError, match="was cancelled"):
            service.result(held_id, timeout=5)

    def test_services_without_admission_admit_everything(self):
        plan, _, _ = _plan()
        with SweepService() as service:
            job_id = service.submit(plan)
            service.result(job_id, timeout=30)
            assert service.status(job_id).admission is None
