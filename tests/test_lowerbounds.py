"""Tests for the fooling-set framework and Corollaries 6.3/6.4."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.graphs import bidirectional_ring, unidirectional_ring
from repro.lowerbounds import (
    FoolingSet,
    cut_edges,
    equality_bound,
    equality_fooling_set,
    equality_function,
    label_complexity_bound,
    majority_bound,
    majority_fooling_set,
    majority_function,
    paper_equality_bound,
    paper_majority_bound,
    ring_bound,
    verify_cut_condition,
    verify_fooling_set,
)
from repro.power.generic_protocol import label_complexity as generic_upper_bound


class TestFoolingSetModel:
    def test_rejects_bad_split(self):
        with pytest.raises(ValidationError):
            FoolingSet(n=4, m=0, pairs=(((), (0, 0, 0, 0)),), value=1)

    def test_rejects_wrong_lengths(self):
        with pytest.raises(ValidationError):
            FoolingSet(n=4, m=2, pairs=(((0,), (0, 0)),), value=1)

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            FoolingSet(
                n=4, m=2, pairs=(((0, 0), (0, 0)), ((0, 0), (0, 0))), value=1
            )

    def test_verify_rejects_non_fooling(self):
        # For OR, two all-different 1-pairs do not fool each other.
        fooling = FoolingSet(
            n=4, m=2, pairs=(((1, 0), (0, 0)), ((0, 1), (0, 0))), value=1
        )
        f = lambda bits: 1 if any(bits) else 0  # noqa: E731
        assert not verify_fooling_set(f, fooling)

    def test_verify_accepts_equality_style_set(self):
        fooling = FoolingSet(
            n=4, m=2, pairs=(((0, 0), (0, 0)), ((1, 1), (1, 1))), value=1
        )
        assert verify_fooling_set(equality_function, fooling)


class TestCutEdges:
    def test_bidirectional_ring_cut(self):
        topo = bidirectional_ring(6)
        out_cut, in_cut = cut_edges(topo, 3)
        assert set(out_cut) == {(2, 3), (0, 5)}
        assert set(in_cut) == {(3, 2), (5, 0)}

    def test_unidirectional_ring_cut(self):
        topo = unidirectional_ring(6)
        out_cut, in_cut = cut_edges(topo, 3)
        assert set(out_cut) == {(2, 3)}
        assert set(in_cut) == {(5, 0)}

    def test_bound_formula(self):
        fooling = FoolingSet(
            n=4, m=2, pairs=tuple((x, x) for x in (((0, 0)), ((1, 1)))), value=1
        )
        assert label_complexity_bound(fooling, [(1, 2)], [(2, 1)]) == 0.5


class TestEqualityCorollary:
    @pytest.mark.parametrize("n", [6, 8, 10, 12])
    def test_set_is_fooling(self, n):
        fooling = equality_fooling_set(n)
        assert fooling.size == 2 ** (n // 2 - 2)
        assert verify_fooling_set(equality_function, fooling)

    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_cut_condition_on_ring(self, n):
        topo = bidirectional_ring(n)
        fooling = equality_fooling_set(n)
        out_cut, in_cut = cut_edges(topo, n // 2)
        assert verify_cut_condition(fooling, out_cut, in_cut)

    @pytest.mark.parametrize("n", [6, 8, 10, 16])
    def test_bound_value(self, n):
        topo = bidirectional_ring(n)
        fooling = equality_fooling_set(n)
        bound = ring_bound(topo, n // 2, fooling)
        assert math.isclose(bound, equality_bound(n))
        # the paper's constant is slightly larger; ours is within 2/8 of it
        assert paper_equality_bound(n) - bound == pytest.approx(0.25)

    def test_linear_growth(self):
        bounds = [equality_bound(n) for n in range(6, 30, 2)]
        diffs = {round(b2 - b1, 6) for b1, b2 in zip(bounds, bounds[1:], strict=False)}
        assert diffs == {0.25}

    def test_below_generic_upper_bound(self):
        for n in (6, 10, 20, 50):
            assert equality_bound(n) < generic_upper_bound(n)

    def test_odd_n_rejected(self):
        with pytest.raises(ValidationError):
            equality_fooling_set(7)


class TestMajorityCorollary:
    @pytest.mark.parametrize("n", [6, 7, 8, 9, 10, 11])
    def test_set_is_fooling(self, n):
        fooling = majority_fooling_set(n)
        assert fooling.size == n // 2 - 1
        assert verify_fooling_set(majority_function, fooling)

    @pytest.mark.parametrize("n", [6, 7, 8, 9, 10])
    def test_cut_condition_on_ring(self, n):
        topo = bidirectional_ring(n)
        fooling = majority_fooling_set(n)
        out_cut, in_cut = cut_edges(topo, n // 2)
        assert verify_cut_condition(fooling, out_cut, in_cut)

    @pytest.mark.parametrize("n", [8, 10, 20])
    def test_bound_value(self, n):
        topo = bidirectional_ring(n)
        fooling = majority_fooling_set(n)
        bound = ring_bound(topo, n // 2, fooling)
        assert math.isclose(bound, majority_bound(n))
        assert bound <= paper_majority_bound(n)

    def test_logarithmic_growth(self):
        # doubling n adds ~1/4 to the bound
        for n in (12, 24, 48):
            assert majority_bound(2 * n) - majority_bound(n) == pytest.approx(
                0.25, abs=0.1
            )

    @given(st.integers(min_value=6, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_majority_bound_below_equality_bound_eventually(self, n):
        if n % 2 == 0 and n >= 12:
            assert majority_bound(n) < equality_bound(n)
