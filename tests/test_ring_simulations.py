"""Tests for the ring-simulation constructions of Theorems 5.2 and 5.4.

* TM-on-ring and BP-on-ring protocols output-stabilize to M(x)/BP(x) from
  random initial labelings (self-stabilization included);
* the logspace-style diagonal simulator agrees with the full engine;
* the circuit-on-ring compiler computes C(x) for standard and random
  circuits; the protocol-to-circuit unroller inverts the direction.
"""

import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import settled_outputs
from repro.core import Labeling, Simulator, SynchronousSchedule
from repro.exceptions import ValidationError
from repro.power import (
    RingCircuitLayout,
    bp_ring_protocol,
    bp_ring_round_bound,
    circuit_ring_protocol,
    machine_ring_protocol,
    machine_ring_round_bound,
    ring_inputs,
    simulate_unidirectional,
    trivial_flood_protocol,
    unroll_protocol,
    worst_case_protocol,
)
from repro.substrates.branching_programs import (
    equality_bp,
    majority_bp,
    parity_bp,
    random_bp,
)
from repro.substrates.circuits import (
    CircuitBuilder,
    and_circuit,
    equality_circuit,
    majority_circuit,
    parity_circuit,
    random_circuit,
)
from repro.substrates.turing import (
    ConfigurationGraph,
    advice_equality_machine,
    contains_one_machine,
    first_equals_last_machine,
    parity_machine,
)


def all_inputs(n):
    return list(product((0, 1), repeat=n))


class TestMachineOnRing:
    @pytest.mark.parametrize(
        "machine_factory,reference",
        [
            (parity_machine, lambda x: sum(x) % 2),
            (contains_one_machine, lambda x: int(any(x))),
            (first_equals_last_machine, lambda x: int(x[0] == x[-1])),
        ],
    )
    def test_computes_machine_language(self, machine_factory, reference):
        machine = machine_factory()
        n = 3
        graph = ConfigurationGraph(machine, n)
        protocol = machine_ring_protocol(graph)
        bound = machine_ring_round_bound(graph)
        rng = random.Random(0)
        for x in all_inputs(n):
            labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
            report = Simulator(protocol, x).run(
                labeling, SynchronousSchedule(n), max_steps=bound + 200
            )
            assert report.output_stable
            assert set(report.outputs) == {reference(x)}
            assert report.output_rounds <= bound

    def test_advice_machine_on_ring(self):
        machine = advice_equality_machine()
        n = 3
        advice = "101"
        graph = ConfigurationGraph(machine, n, advice=advice)
        protocol = machine_ring_protocol(graph)
        rng = random.Random(1)
        for x in all_inputs(n):
            labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
            report = Simulator(protocol, x).run(
                labeling,
                SynchronousSchedule(n),
                max_steps=machine_ring_round_bound(graph) + 200,
            )
            expected = int("".join(map(str, x)) == advice)
            assert set(report.outputs) == {expected}

    def test_logarithmic_label_complexity(self):
        import math

        machine = parity_machine()
        for n in (3, 5, 7):
            graph = ConfigurationGraph(machine, n)
            protocol = machine_ring_protocol(graph)
            # |Sigma| = |Z| * 2 * (|Z|+1) * 2 with |Z| = O(n): L_n = O(log n)
            assert protocol.label_complexity <= 2 * math.log2(graph.size) + 4


class TestBPOnRing:
    @pytest.mark.parametrize(
        "bp_factory,n,reference",
        [
            (parity_bp, 4, lambda x: sum(x) % 2),
            (majority_bp, 3, lambda x: int(sum(x) >= 1.5)),
            (equality_bp, 4, lambda x: int(x[:2] == x[2:])),
        ],
    )
    def test_computes_bp_function(self, bp_factory, n, reference):
        bp = bp_factory(n)
        protocol = bp_ring_protocol(bp)
        bound = bp_ring_round_bound(bp)
        rng = random.Random(2)
        for x in all_inputs(n):
            labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
            report = Simulator(protocol, x).run(
                labeling, SynchronousSchedule(n), max_steps=bound + 200
            )
            assert report.output_stable
            assert set(report.outputs) == {reference(x)}

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_random_bps_differentially(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 5)
        bp = random_bp(n, rng.randrange(1, 8), seed=seed)
        protocol = bp_ring_protocol(bp)
        bound = bp_ring_round_bound(bp)
        x = tuple(rng.randrange(2) for _ in range(n))
        labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
        report = Simulator(protocol, x).run(
            labeling, SynchronousSchedule(n), max_steps=bound + 200
        )
        assert set(report.outputs) == {bp.evaluate(x)}


class TestDiagonalSimulation:
    def test_agrees_with_engine_on_machines(self):
        machine = parity_machine()
        n = 4
        graph = ConfigurationGraph(machine, n)
        protocol = machine_ring_protocol(graph)
        initial = next(iter(protocol.label_space))
        steps = machine_ring_round_bound(graph) + 4 * n
        for x in all_inputs(n):
            assert simulate_unidirectional(protocol, x, initial, steps) == sum(x) % 2

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_diagonal_identity_on_random_bps(self, seed):
        """The diagonal label sequence equals the engine's run from the
        uniform labeling: l_t = label of edge (t mod n, t+1 mod n) at time t."""
        from repro.power import diagonal_labels

        rng = random.Random(seed)
        n = rng.randrange(2, 5)
        bp = random_bp(n, rng.randrange(1, 6), seed=seed)
        protocol = bp_ring_protocol(bp)
        initial = next(iter(protocol.label_space))
        x = tuple(rng.randrange(2) for _ in range(n))
        steps = 3 * n
        diagonal = diagonal_labels(protocol, x, initial, steps)
        trace = Simulator(protocol, x).run_trace(
            Labeling.uniform(protocol.topology, initial),
            SynchronousSchedule(n),
            steps,
        )
        for t in range(1, steps + 1):
            j = (t - 1) % n
            edge = (j, (j + 1) % n)
            assert diagonal[t - 1] == trace[t].labeling[edge]

    def test_rejects_non_ring(self):
        from repro.graphs import clique
        from tests.helpers import or_clique_protocol

        protocol = or_clique_protocol(clique(3))
        with pytest.raises(ValidationError):
            simulate_unidirectional(protocol, (0, 0, 0), 0)


class TestCircuitOnRing:
    @pytest.mark.parametrize(
        "circuit_factory,n",
        [(and_circuit, 2), (parity_circuit, 3), (majority_circuit, 3)],
    )
    def test_standard_circuits_exhaustively(self, circuit_factory, n):
        circuit = circuit_factory(n)
        layout = RingCircuitLayout(circuit)
        protocol = circuit_ring_protocol(circuit)
        rng = random.Random(3)
        settle = layout.round_bound()
        for x in all_inputs(n):
            labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
            outputs = settled_outputs(
                protocol,
                ring_inputs(layout, x),
                labeling,
                settle=settle,
                window=2 * layout.modulus,
            )
            assert set(outputs) == {circuit.evaluate(x)}

    def test_equality_circuit_on_ring(self):
        circuit = equality_circuit(4)
        layout = RingCircuitLayout(circuit)
        protocol = circuit_ring_protocol(circuit)
        rng = random.Random(4)
        for x in ((0, 1, 0, 1), (1, 0, 0, 1), (1, 1, 1, 1), (0, 0, 1, 0)):
            labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
            outputs = settled_outputs(
                protocol,
                ring_inputs(layout, x),
                labeling,
                settle=layout.round_bound(),
                window=layout.modulus,
            )
            assert set(outputs) == {circuit.evaluate(x)}

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_random_circuits_differentially(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 4)
        circuit = random_circuit(n, rng.randrange(1, 5), seed=seed)
        layout_gates = [g for g in circuit.gates if g.op not in ("INPUT", "CONST")]
        if not layout_gates or circuit.gates[circuit.output].op in ("INPUT", "CONST"):
            return  # trivial circuit: covered by the flood tests
        layout = RingCircuitLayout(circuit)
        protocol = circuit_ring_protocol(circuit)
        x = tuple(rng.randrange(2) for _ in range(n))
        labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
        outputs = settled_outputs(
            protocol,
            ring_inputs(layout, x),
            labeling,
            settle=layout.round_bound(),
            window=layout.modulus,
        )
        assert set(outputs) == {circuit.evaluate(x)}

    def test_label_complexity_logarithmic(self):
        import math

        circuit = majority_circuit(3)
        layout = RingCircuitLayout(circuit)
        protocol = circuit_ring_protocol(circuit)
        assert protocol.label_complexity <= 2 * math.log2(layout.modulus) + 6

    def test_trivial_input_circuit(self):
        builder = CircuitBuilder(2)
        circuit = builder.build(builder.input(1))
        protocol = trivial_flood_protocol(circuit)
        rng = random.Random(5)
        n_ring = protocol.topology.n
        for x in all_inputs(2):
            labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
            padded = tuple(list(x) + [0] * (n_ring - 2))
            report = Simulator(protocol, padded).run(
                labeling, SynchronousSchedule(n_ring)
            )
            assert report.label_stable
            assert set(report.outputs) == {x[1]}

    def test_trivial_const_circuit(self):
        builder = CircuitBuilder(1)
        circuit = builder.build(builder.const(1))
        protocol = trivial_flood_protocol(circuit)
        labeling = Labeling.uniform(protocol.topology, 0)
        report = Simulator(protocol, (0,) * protocol.topology.n).run(
            labeling, SynchronousSchedule(protocol.topology.n)
        )
        assert set(report.outputs) == {1}

    def test_nontrivial_circuit_rejected_by_flood(self):
        with pytest.raises(ValidationError):
            trivial_flood_protocol(and_circuit(2))

    def test_trivial_circuit_rejected_by_compiler(self):
        builder = CircuitBuilder(1)
        circuit = builder.build(builder.input(0))
        with pytest.raises(ValidationError):
            RingCircuitLayout(circuit)


class TestUnrollProtocol:
    def test_unrolls_worst_case_protocol(self):
        n, q = 3, 2
        protocol = worst_case_protocol(n, q)
        rounds = n * q + 2
        circuit = unroll_protocol(protocol, rounds, node=1)
        # the worst-case protocol ignores inputs; from the all-zero labeling
        # node 1 outputs 1 after convergence
        initial = Labeling.uniform(protocol.topology, 0)
        circuit0 = unroll_protocol(protocol, rounds, node=1, initial_labeling=initial)
        for x in all_inputs(n):
            assert circuit0.evaluate(x) == 1
        del circuit

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_matches_engine_on_random_protocols(self, seed):
        from repro.core import StatelessProtocol, TabularReaction, binary
        from repro.graphs import unidirectional_ring

        rng = random.Random(seed)
        n = 3
        topology = unidirectional_ring(n)
        reactions = []
        for i in range(n):
            table = {}
            for lbl in (0, 1):
                for x in (0, 1):
                    table[((lbl,), x)] = ((rng.randrange(2),), rng.randrange(2))
            reactions.append(
                TabularReaction(topology.in_edges(i), topology.out_edges(i), table)
            )
        protocol = StatelessProtocol(topology, binary(), reactions)
        rounds = rng.randrange(1, 7)
        node = rng.randrange(n)
        circuit = unroll_protocol(protocol, rounds, node=node)
        initial = Labeling.uniform(topology, 0)
        for x in all_inputs(n):
            trace = Simulator(protocol, x).run_trace(
                initial, SynchronousSchedule(n), rounds
            )
            assert circuit.evaluate(x) == trace[rounds].outputs[node]

    def test_rejects_zero_rounds(self):
        protocol = worst_case_protocol(3, 2)
        with pytest.raises(ValidationError):
            unroll_protocol(protocol, 0)
