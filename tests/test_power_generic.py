"""Tests for Proposition 2.3 (generic protocol) and Lemma C.2 (unidirectional).

These machine-verify:
* L_n = n + 1 and R_n <= 2n for the generic protocol, on several topologies,
  for random functions, from random initial labelings — including the
  label-stabilization claim;
* R_n = n(|Sigma|-1) exactly for the worst-case unidirectional protocol.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Labeling,
    RandomRFairSchedule,
    Simulator,
    SynchronousSchedule,
)
from repro.graphs import (
    bidirectional_ring,
    clique,
    random_strongly_connected,
    star,
    unidirectional_ring,
)
from repro.power import (
    generic_protocol,
    generic_round_bound,
    worst_case_protocol,
    worst_case_round_complexity,
)
from repro.power.generic_protocol import label_complexity


def random_function(n, seed):
    rng = random.Random(seed)
    truth = {}

    def f(bits):
        key = tuple(bits)
        if key not in truth:
            truth[key] = rng.randrange(2)
        return truth[key]

    return f


TOPOLOGY_FACTORIES = {
    "uni-ring": unidirectional_ring,
    "bi-ring": bidirectional_ring,
    "clique": clique,
    "star": star,
}


class TestGenericProtocol:
    @pytest.mark.parametrize("family", sorted(TOPOLOGY_FACTORIES))
    @pytest.mark.parametrize("n", [3, 5])
    def test_computes_random_function(self, family, n):
        topology = TOPOLOGY_FACTORIES[family](n)
        f = random_function(n, seed=hash((family, n)) % 10_000)
        protocol = generic_protocol(topology, f)
        rng = random.Random(0)
        for _ in range(4):
            x = tuple(rng.randrange(2) for _ in range(n))
            labeling = Labeling.random(topology, protocol.label_space, rng)
            report = Simulator(protocol, x).run(labeling, SynchronousSchedule(n))
            assert report.label_stable
            assert all(y == f(x) for y in report.outputs)
            assert report.label_rounds <= 2 * n

    def test_label_complexity_is_n_plus_one(self):
        n = 6
        protocol = generic_protocol(unidirectional_ring(n), lambda bits: 0)
        assert math.isclose(protocol.label_complexity, label_complexity(n))
        assert label_complexity(n) == n + 1

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_random_functions(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(3, 7)
        topology = random_strongly_connected(n, rng.randrange(0, 5), seed=seed)
        f = random_function(n, seed)
        protocol = generic_protocol(topology, f)
        x = tuple(rng.randrange(2) for _ in range(n))
        labeling = Labeling.random(topology, protocol.label_space, rng)
        report = Simulator(protocol, x).run(labeling, SynchronousSchedule(n))
        assert report.label_stable
        assert all(y == f(x) for y in report.outputs)
        assert report.label_rounds <= generic_round_bound(n)

    def test_converges_under_random_fair_schedules(self):
        # Self-stabilization is not synchronous-only: r-fair schedules work
        # too (each tree level still flushes after everyone activates).
        n = 4
        topology = clique(n)
        f = lambda bits: (bits[0] ^ bits[3]) & 1  # noqa: E731
        protocol = generic_protocol(topology, f)
        rng = random.Random(7)
        for seed in range(3):
            x = tuple(rng.randrange(2) for _ in range(n))
            labeling = Labeling.random(topology, protocol.label_space, rng)
            schedule = RandomRFairSchedule(n, r=3, seed=seed)
            report = Simulator(protocol, x).run(labeling, schedule, max_steps=5000)
            assert report.label_stable
            assert all(y == f(x) for y in report.outputs)

    def test_stable_labeling_is_fixed_point(self):
        from repro.stabilization import is_stable_labeling

        n = 4
        topology = unidirectional_ring(n)
        f = lambda bits: bits[0] & 1  # noqa: E731
        protocol = generic_protocol(topology, f)
        x = (1, 0, 1, 1)
        report = Simulator(protocol, x).run(
            Labeling.uniform(topology, ((0,) * n, 0)), SynchronousSchedule(n)
        )
        assert report.label_stable
        assert is_stable_labeling(protocol, x, report.final.labeling)


class TestWorstCaseUnidirectional:
    @pytest.mark.parametrize("n,q", [(3, 2), (3, 3), (4, 3), (5, 4), (6, 2)])
    def test_exact_round_complexity_from_zero_labeling(self, n, q):
        protocol = worst_case_protocol(n, q)
        labeling = Labeling.uniform(protocol.topology, 0)
        report = Simulator(protocol, (0,) * n).run(
            labeling, SynchronousSchedule(n), max_steps=n * q + 10
        )
        assert report.label_stable
        assert report.label_rounds == worst_case_round_complexity(n, q)

    @pytest.mark.parametrize("n,q", [(3, 2), (4, 3), (5, 2)])
    def test_all_initial_labelings_within_lemma_bound(self, n, q):
        # Lemma C.2(1): R_n <= n |Sigma| over *all* initial labelings.
        from itertools import product

        protocol = worst_case_protocol(n, q)
        worst = 0
        for values in product(range(q), repeat=n):
            labeling = Labeling(protocol.topology, values)
            report = Simulator(protocol, (0,) * n).run(
                labeling, SynchronousSchedule(n), max_steps=n * q + 10
            )
            assert report.label_stable
            worst = max(worst, report.label_rounds)
        assert worst <= n * q
        assert worst == worst_case_round_complexity(n, q)

    def test_outputs_all_one_at_convergence(self):
        protocol = worst_case_protocol(4, 3)
        labeling = Labeling.uniform(protocol.topology, 0)
        report = Simulator(protocol, (0,) * 4).run(
            labeling, SynchronousSchedule(4)
        )
        assert set(report.outputs) == {1}
