"""Tests for the graph-automorphism substrate (repro.graphs.automorphisms).

The symmetry quotient stands on three legs: discovering automorphism
groups of the standard families, acting with them on states (labelings /
per-node vectors / activation sets), and canonicalizing states to orbit
representatives.  Each leg is checked directly here; end-to-end quotient
equivalence lives in ``test_quotient.py``.
"""

import pytest

from repro.core import default_inputs
from repro.exceptions import ValidationError
from repro.graphs import (
    SymmetryGroup,
    automorphism_generators,
    bidirectional_ring,
    clique,
    close_generators,
    edge_permutation,
    protocol_symmetry_group,
    star,
    torus,
    unidirectional_ring,
)
from repro.graphs.automorphisms import (
    compose,
    identity_permutation,
    invert,
)

from tests.helpers import copy_ring_protocol, or_clique_protocol


def _full_group(topology):
    return close_generators(
        automorphism_generators(topology), topology.n, 100_000
    )


class TestGroupDiscovery:
    @pytest.mark.parametrize(
        "topology, order",
        [
            (clique(3), 6),
            (clique(4), 24),
            (clique(5), 120),
            (unidirectional_ring(5), 5),
            (unidirectional_ring(6), 6),
            (bidirectional_ring(5), 10),
            (bidirectional_ring(6), 12),
            (star(5), 24),  # S_4 on the leaves, hub fixed
        ],
    )
    def test_known_orders(self, topology, order):
        assert len(_full_group(topology)) == order

    def test_torus_contains_all_shifts(self):
        topology = torus(3, 3)
        elements = set(_full_group(topology))
        assert len(elements) % 9 == 0 and len(elements) >= 9

    def test_every_element_is_an_automorphism(self):
        for topology in [clique(4), bidirectional_ring(6), star(5), torus(3, 3)]:
            for perm in _full_group(topology):
                assert edge_permutation(topology, perm) is not None

    def test_non_automorphism_rejected(self):
        topology = star(4)  # hub 0; swapping hub with a leaf breaks edges
        assert edge_permutation(topology, (1, 0, 2, 3)) is None

    def test_closure_respects_cap(self):
        with pytest.raises(ValidationError):
            close_generators(automorphism_generators(clique(5)), 5, 50)


class TestPermutationAlgebra:
    def test_compose_invert_roundtrip(self):
        p, q = (1, 2, 0, 3), (3, 0, 2, 1)
        identity = identity_permutation(4)
        assert compose(p, invert(p)) == identity
        assert compose(invert(p), p) == identity
        assert invert(compose(p, q)) == compose(invert(q), invert(p))

    def test_edge_permutation_is_a_homomorphism(self):
        topology = bidirectional_ring(5)
        p, q = (1, 2, 3, 4, 0), (0, 4, 3, 2, 1)
        ep = edge_permutation(topology, p)
        eq = edge_permutation(topology, q)
        epq = edge_permutation(topology, compose(p, q))
        assert epq == compose(ep, eq)


class TestSymmetryGroupActions:
    def _group(self, topology):
        return SymmetryGroup(topology, _full_group(topology))

    def test_identity_must_come_first(self):
        topology = clique(3)
        elements = _full_group(topology)
        shuffled = [p for p in elements if p != identity_permutation(3)]
        with pytest.raises(ValidationError):
            SymmetryGroup(topology, shuffled)

    def test_index_algebra_matches_permutations(self):
        group = self._group(clique(4))
        for g in range(group.order):
            for h in range(0, group.order, 5):
                gh = group.compose(g, h)
                assert group.node_perms[gh] == compose(
                    group.node_perms[g], group.node_perms[h]
                )
            assert group.node_perms[group.inverse(g)] == invert(
                group.node_perms[g]
            )

    def test_labeling_action_is_a_group_action(self):
        group = self._group(bidirectional_ring(4))
        values = tuple(range(len(group.topology.edges)))
        for g in range(group.order):
            for h in range(group.order):
                via_compose = group.apply_labeling(group.compose(g, h), values)
                stepwise = group.apply_labeling(g, group.apply_labeling(h, values))
                assert via_compose == stepwise

    def test_per_node_action_tracks_nodes(self):
        group = self._group(clique(4))
        vector = (10, 20, 30, 40)
        for g in range(group.order):
            perm = group.node_perms[g]
            moved = group.apply_per_node(g, vector)
            for i in range(4):
                assert moved[perm[i]] == vector[i]
            assert group.apply_nodes(g, {0, 1}) == frozenset({perm[0], perm[1]})

    def test_element_order_divides_group_order(self):
        group = self._group(clique(4))
        for g in range(group.order):
            assert group.order % group.element_order(g) == 0


class TestStateCanonicalizer:
    def _setup(self, topology):
        group = SymmetryGroup(topology, _full_group(topology))
        return group, group.canonicalizer(track_outputs=False)

    def test_canonical_is_idempotent_and_orbit_invariant(self):
        topology = clique(4)
        group, canon = self._setup(topology)
        values = (0, 1, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1)[: len(topology.edges)]
        countdown = (1, 2, 3, 3)

        g0, _ = canon.canonical(values, None, countdown)
        canon_values = group.apply_labeling(g0, values)
        canon_countdown = group.apply_per_node(g0, countdown)
        for g in range(group.order):
            moved_values = group.apply_labeling(g, values)
            moved_countdown = group.apply_per_node(g, countdown)
            gk, _ = canon.canonical(moved_values, None, moved_countdown)
            assert group.apply_labeling(gk, moved_values) == canon_values
            assert group.apply_per_node(gk, moved_countdown) == canon_countdown

    def test_ties_give_exact_orbit_sizes(self):
        topology = clique(3)
        group, canon = self._setup(topology)
        import itertools

        states = list(itertools.product((0, 1), repeat=len(topology.edges)))
        orbits = {}
        for values in states:
            g0, ties = canon.canonical(values, None, (1, 1, 1))
            rep = group.apply_labeling(g0, values)
            orbit_size = group.order // ties
            orbits.setdefault(rep, set()).add(values)
            assert group.order % ties == 0
            # the claimed orbit size matches the actual orbit
            actual = {group.apply_labeling(g, values) for g in range(group.order)}
            assert len(actual) == orbit_size
        # orbits partition the space
        assert sum(len(v) for v in orbits.values()) == len(states)


class TestProtocolSymmetryGroup:
    def test_or_clique_gets_the_full_symmetric_group(self):
        protocol = or_clique_protocol(clique(4))
        group = protocol_symmetry_group(protocol, default_inputs(protocol))
        assert group is not None
        assert group.order == 24
        assert group.label_universe == frozenset({0, 1})

    def test_result_is_cached_per_protocol(self):
        protocol = or_clique_protocol(clique(4))
        inputs = default_inputs(protocol)
        assert protocol_symmetry_group(protocol, inputs) is (
            protocol_symmetry_group(protocol, inputs)
        )

    def test_copy_ring_keeps_rotations(self):
        protocol = copy_ring_protocol(4)
        group = protocol_symmetry_group(protocol, default_inputs(protocol))
        assert group is not None
        assert group.order == 4  # rotations only on the directed ring

    def test_asymmetric_inputs_shrink_the_group(self):
        protocol = or_clique_protocol(clique(4))
        group = protocol_symmetry_group(protocol, (0, 0, 0, 7))
        # only permutations fixing node 3 survive: S_3 or nothing
        assert group is None or group.order <= 6

    def test_non_equivariant_protocol_falls_back_to_none(self):
        from repro.core import LambdaReaction, StatelessProtocol, binary

        topology = clique(3)

        def make(i):
            def fn(incoming, x):
                # node 0 behaves differently: breaks equivariance
                bit = 1 if (i == 0 or any(incoming.values())) else 0
                return {e: bit for e in topology.out_edges(i)}, bit

            return LambdaReaction(fn)

        protocol = StatelessProtocol(
            topology, binary(), [make(i) for i in range(3)], name="lopsided"
        )
        group = protocol_symmetry_group(protocol, default_inputs(protocol))
        assert group is None
