"""Tests for the best-response dynamics layer (the Section 3 implications).

Machine-verified corollaries of Theorem 3.1:
* coordination games, BGP-DISAGREE, contagion, the SR latch — all with >= 2
  stable labelings — are not label (n-1)-stabilizing;
* BAD GADGET has *no* stable labeling and oscillates under every schedule;
* GOOD GADGET and shortest-path routing converge.
"""

import random

import pytest

from repro.core import (
    Labeling,
    RandomRFairSchedule,
    RunOutcome,
    Simulator,
    SynchronousSchedule,
    default_inputs,
)
from repro.dynamics import (
    NO_ROUTE,
    TECH_A,
    TECH_B,
    adoption_counts,
    anti_coordination_game,
    bad_gadget,
    best_response_protocol,
    bgp_protocol,
    congestion_game,
    congestion_protocol,
    contagion_protocol,
    coordination_game,
    disagree,
    good_gadget,
    link_loads,
    ring_oscillator,
    seeded_labeling,
    shortest_path_instance,
    sr_latch,
)
from repro.exceptions import ValidationError
from repro.graphs import bidirectional_ring, clique, path
from repro.stabilization import (
    broadcast_labelings,
    decide_label_r_stabilizing,
    is_stable_labeling,
    stable_labelings,
)


class TestBestResponseCompiler:
    def test_stable_labelings_are_best_response_equilibria(self):
        game = coordination_game(clique(3))
        protocol = best_response_protocol(game)
        inputs = default_inputs(protocol)
        stables = stable_labelings(
            protocol,
            inputs,
            broadcast_labelings(protocol.topology, protocol.label_space),
        )
        profiles = {
            tuple(labeling[(i, (i + 1) % 3)] for i in range(3))
            for labeling in stables
        }
        assert profiles == set(game.best_response_equilibria())

    def test_best_response_equilibria_subset_of_nash(self):
        game = coordination_game(clique(4))
        br = set(game.best_response_equilibria())
        nash = set(game.pure_nash_equilibria())
        assert br <= nash
        assert (0, 0, 0, 0) in br and (1, 1, 1, 1) in br

    def test_coordination_not_n_minus_1_stabilizing(self):
        # Theorem 3.1 corollary: two equilibria => no (n-1)-stabilization.
        game = coordination_game(clique(3))
        protocol = best_response_protocol(game)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing

    def test_anti_coordination_on_path_converges_synchronously(self):
        game = anti_coordination_game(path(2))
        protocol = best_response_protocol(game)
        report = Simulator(protocol, default_inputs(protocol)).run(
            Labeling.uniform(protocol.topology, 0), SynchronousSchedule(2)
        )
        # two players anti-coordinating synchronously flip forever
        assert report.outcome in (RunOutcome.OSCILLATING, RunOutcome.LABEL_STABLE)


class TestBGP:
    def test_disagree_has_two_stable_solutions(self):
        instance = disagree()
        solutions = instance.stable_solutions()
        assert len(solutions) == 2
        chosen = {tuple(sorted((s[1], s[2]))) for s in solutions}
        assert chosen == {
            tuple(sorted(((1, 0), (2, 1, 0)))),
            tuple(sorted(((1, 2, 0), (2, 0)))),
        }

    def test_disagree_protocol_stable_labelings_match_solutions(self):
        instance = disagree()
        protocol = bgp_protocol(instance)
        inputs = default_inputs(protocol)
        count = 0
        for labeling in broadcast_labelings(
            protocol.topology, protocol.label_space
        ):
            if is_stable_labeling(protocol, inputs, labeling):
                count += 1
        assert count == len(instance.stable_solutions())

    def test_disagree_not_2_stabilizing(self):
        # n = 3, so Theorem 3.1 rules out label 2-stabilization.
        instance = disagree()
        protocol = bgp_protocol(instance)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing
        assert verdict.witness is not None

    def test_bad_gadget_has_no_stable_solution(self):
        instance = bad_gadget()
        assert instance.stable_solutions() == []

    def test_bad_gadget_oscillates_synchronously(self):
        instance = bad_gadget()
        protocol = bgp_protocol(instance)
        labeling = Labeling.uniform(protocol.topology, NO_ROUTE)
        report = Simulator(protocol, default_inputs(protocol)).run(
            labeling, SynchronousSchedule(protocol.n), max_steps=2000
        )
        assert report.outcome is RunOutcome.OSCILLATING

    def test_bad_gadget_never_stabilizes_under_random_fair(self):
        instance = bad_gadget()
        protocol = bgp_protocol(instance)
        rng = random.Random(0)
        for seed in range(3):
            labeling = Labeling.random(
                protocol.topology, protocol.label_space, rng
            )
            report = Simulator(protocol, default_inputs(protocol)).run(
                labeling,
                RandomRFairSchedule(protocol.n, r=3, seed=seed),
                max_steps=600,
            )
            assert report.outcome is RunOutcome.TIMEOUT  # never converges

    def test_good_gadget_unique_solution_and_convergence(self):
        instance = good_gadget()
        solutions = instance.stable_solutions()
        assert len(solutions) == 1
        assert solutions[0][1] == (1, 0)
        protocol = bgp_protocol(instance)
        rng = random.Random(1)
        for seed in range(4):
            labeling = Labeling.random(
                protocol.topology, protocol.label_space, rng
            )
            report = Simulator(protocol, default_inputs(protocol)).run(
                labeling,
                RandomRFairSchedule(protocol.n, r=3, seed=seed),
                max_steps=4000,
            )
            assert report.label_stable
            assert report.outputs[1] == (1, 0)

    def test_shortest_path_instance_converges_to_shortest_paths(self):
        topology = bidirectional_ring(5)
        instance = shortest_path_instance(topology, destination=0)
        protocol = bgp_protocol(instance)
        report = Simulator(protocol, default_inputs(protocol)).run(
            Labeling.uniform(protocol.topology, NO_ROUTE),
            SynchronousSchedule(protocol.n),
        )
        assert report.label_stable
        # nodes 1 and 4 are adjacent to the destination; 2 and 3 two hops out
        assert report.outputs[1] == (1, 0)
        assert report.outputs[4] == (4, 0)
        assert len(report.outputs[2]) == 3
        assert len(report.outputs[3]) == 3

    def test_path_validation(self):
        instance = disagree()
        with pytest.raises(ValidationError):
            SPPType = type(instance)
            SPPType(
                instance.topology,
                0,
                {1: [(1, 2)], 2: []},  # path not ending at destination
            )


class TestContagion:
    def test_all_a_and_all_b_are_stable(self):
        protocol = contagion_protocol(bidirectional_ring(5), theta=0.5)
        inputs = default_inputs(protocol)
        all_a = Labeling.uniform(protocol.topology, TECH_A)
        all_b = Labeling.uniform(protocol.topology, TECH_B)
        assert is_stable_labeling(protocol, inputs, all_a)
        assert is_stable_labeling(protocol, inputs, all_b)

    def test_not_n_minus_1_stabilizing(self):
        topology = bidirectional_ring(4)
        protocol = contagion_protocol(topology, theta=0.5)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            3,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing

    def test_contagion_spreads_on_ring(self):
        # theta = 1/2 on the ring: two adjacent adopters convert everyone.
        topology = bidirectional_ring(8)
        protocol = contagion_protocol(topology, theta=0.5)
        labeling = seeded_labeling(topology, adopters={0, 1})
        report = Simulator(protocol, default_inputs(protocol)).run(
            labeling, SynchronousSchedule(8)
        )
        assert report.label_stable
        assert adoption_counts(report.outputs) == 8

    def test_high_threshold_blocks_contagion(self):
        topology = bidirectional_ring(8)
        protocol = contagion_protocol(topology, theta=0.9)
        labeling = seeded_labeling(topology, adopters={0, 1})
        report = Simulator(protocol, default_inputs(protocol)).run(
            labeling, SynchronousSchedule(8)
        )
        assert report.label_stable
        assert adoption_counts(report.outputs) == 0


class TestCongestion:
    def test_equilibria_are_balanced(self):
        game = congestion_game(4, 2)
        for profile in game.best_response_equilibria():
            loads = link_loads(profile, 2)
            assert abs(loads[0] - loads[1]) <= 1

    def test_multiple_equilibria_imply_instability(self):
        game = congestion_game(3, 2)
        assert len(game.best_response_equilibria()) >= 2
        protocol = congestion_protocol(3, 2)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing

    def test_synchronous_herding_oscillates(self):
        # Everyone on link 0 -> everyone hops to link 1 -> back: flapping.
        protocol = congestion_protocol(4, 2)
        labeling = Labeling.uniform(protocol.topology, 0)
        report = Simulator(protocol, default_inputs(protocol)).run(
            labeling, SynchronousSchedule(4), max_steps=100
        )
        assert report.outcome is RunOutcome.OSCILLATING


class TestAsyncCircuits:
    def test_sr_latch_holds_two_states(self):
        protocol = sr_latch()
        inputs = (0, 0)  # S = R = 0: hold
        q_high = Labeling.from_dict(protocol.topology, {(0, 1): 1, (1, 0): 0})
        q_low = Labeling.from_dict(protocol.topology, {(0, 1): 0, (1, 0): 1})
        assert is_stable_labeling(protocol, inputs, q_high)
        assert is_stable_labeling(protocol, inputs, q_low)

    def test_sr_latch_metastable_oscillation(self):
        protocol = sr_latch()
        labeling = Labeling.uniform(protocol.topology, 0)
        report = Simulator(protocol, (0, 0)).run(
            labeling, SynchronousSchedule(2), max_steps=50
        )
        assert report.outcome is RunOutcome.OSCILLATING
        assert report.cycle_length == 2

    def test_sr_latch_not_1_stabilizing_with_hold_inputs(self):
        protocol = sr_latch()
        verdict = decide_label_r_stabilizing(protocol, (0, 0), 1)
        assert not verdict.stabilizing

    def test_sr_latch_set_input_forces_state(self):
        protocol = sr_latch()
        labeling = Labeling.uniform(protocol.topology, 0)
        report = Simulator(protocol, (1, 0)).run(  # S = 1: force Q' side
            labeling, SynchronousSchedule(2)
        )
        assert report.label_stable
        assert report.outputs == (0, 1)

    @pytest.mark.parametrize("n", [3, 5])
    def test_ring_oscillator_has_no_stable_labeling(self, n):
        protocol = ring_oscillator(n)
        stables = stable_labelings(protocol, default_inputs(protocol))
        assert stables == []

    def test_ring_oscillator_oscillates(self):
        protocol = ring_oscillator(3)
        report = Simulator(protocol, default_inputs(protocol)).run(
            Labeling.uniform(protocol.topology, 0),
            SynchronousSchedule(3),
            max_steps=100,
        )
        assert report.outcome is RunOutcome.OSCILLATING

    def test_even_ring_oscillator_rejected(self):
        with pytest.raises(ValidationError):
            ring_oscillator(4)
