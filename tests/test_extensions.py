"""Tests for the future-work extensions (Section 7).

* Almost-stateless computation: the memory model, the mirror-node compiler,
  and step-for-step equivalence between the two semantics.
* Randomized reactions: Example 1 with coin-flip tie-breaking defeats the
  adversarial (n-1)-fair schedule almost surely.
"""


import pytest

from repro.core import (
    ExplicitSchedule,
    Labeling,
    Simulator,
    SynchronousSchedule,
    minimal_fairness,
)
from repro.exceptions import ValidationError
from repro.extensions import (
    MemoryProtocol,
    RandomizedSimulator,
    compile_to_stateless,
    counter_with_memory,
    expand_memory_inputs,
    mirror_schedule_steps,
    mirror_topology,
    randomized_example1,
)
from repro.graphs import unidirectional_ring
from repro.stabilization import one_token_labeling, oscillating_schedule


class TestMirrorTopology:
    def test_structure(self):
        base = unidirectional_ring(3)
        big = mirror_topology(base)
        assert big.n == 6
        assert big.has_edge(0, 3) and big.has_edge(3, 0)
        assert big.has_edge(1, 4) and big.has_edge(4, 1)
        # original edges preserved
        for edge in base.edges:
            assert big.has_edge(*edge)


class TestAlmostStateless:
    def test_memory_protocol_reference_semantics(self):
        protocol = counter_with_memory(3, modulus=4)
        schedule = SynchronousSchedule(3)
        trace = protocol.run_trace(
            [0, 0, 0], [0, 0, 0], (0, 0, 0), schedule, steps=5
        )
        # after t steps each node's memory is t mod 4
        _, memories = trace[5]
        assert memories == (1, 2, 3, 0)[1:4] or memories == (5 % 4,) * 3
        assert memories == (1, 1, 1) or memories == (5 % 4,) * 3

    def test_compiled_matches_reference_synchronously(self):
        protocol = counter_with_memory(3, modulus=5)
        compiled = compile_to_stateless(protocol)
        assert compiled.n == 6
        source_steps = [set(range(3))] * 7
        lifted = mirror_schedule_steps(source_steps, 3)
        simulator = Simulator(compiled, expand_memory_inputs((0, 0, 0)))
        initial = Labeling.uniform(compiled.topology, (0, 0))
        trace = simulator.run_trace(
            initial, ExplicitSchedule(6, lifted, cycle=False), steps=len(lifted)
        )
        reference = protocol.run_trace(
            [0, 0, 0], [0, 0, 0], (0, 0, 0), SynchronousSchedule(3), steps=7
        )
        for t in range(1, 8):
            # one source step = two compiled steps
            _, memories = reference[t]
            assert trace[2 * t].outputs[:3] == memories

    def test_compiled_respects_partial_schedules(self):
        protocol = counter_with_memory(3, modulus=3)
        compiled = compile_to_stateless(protocol)
        steps = [{0}, {1}, {2}, {0, 1}]
        lifted = mirror_schedule_steps(steps, 3)
        simulator = Simulator(compiled, expand_memory_inputs((0, 0, 0)))
        initial = Labeling.uniform(compiled.topology, (0, 0))
        trace = simulator.run_trace(
            initial, ExplicitSchedule(6, lifted, cycle=False), steps=len(lifted)
        )
        reference = protocol.run_trace(
            [0, 0, 0],
            [0, 0, 0],
            (0, 0, 0),
            ExplicitSchedule(3, steps, cycle=False),
            steps=4,
        )
        for t in range(5):
            _, memories = reference[t]
            for i in range(3):
                # after the mirror phase the echo edge carries i's memory
                assert trace[2 * t].labeling[(3 + i, i)][1] == memories[i]

    def test_memory_counter_counts_activations(self):
        protocol = counter_with_memory(4, modulus=10)
        compiled = compile_to_stateless(protocol)
        simulator = Simulator(compiled, expand_memory_inputs((0,) * 4))
        initial = Labeling.uniform(compiled.topology, (0, 0))
        # node 0 is activated three times, others once (two-phase lift)
        steps = mirror_schedule_steps([{0}, {0}, {0}, {1}, {2}, {3}], 4)
        schedule = ExplicitSchedule(8, steps, cycle=False)
        config = simulator.initial_configuration(initial)
        for t in range(len(steps)):
            config = simulator.step(config, schedule.active(t))
        assert config.outputs[0] == 3
        assert config.outputs[1] == 1

    def test_wrong_arity_rejected(self):
        from repro.core import binary

        with pytest.raises(ValidationError):
            MemoryProtocol(
                unidirectional_ring(3), binary(), binary(), [lambda *a: None]
            )


class TestRandomizedExample1:
    def test_deterministic_schedule_defeated(self):
        """The Theorem 3.1 adversarial schedule loses against coin flips:
        across seeds, the randomized protocol converges well within budget."""
        n = 4
        protocol = randomized_example1(n)
        schedule = oscillating_schedule(n)
        assert minimal_fairness(schedule, 100) == n - 1
        converged = 0
        for seed in range(20):
            simulator = RandomizedSimulator(protocol, (0,) * n, seed=seed)
            ok, _ = simulator.run_until_label_constant(
                one_token_labeling(n), schedule, max_steps=400, quiet_window=3 * n
            )
            converged += ok
        assert converged == 20

    def test_converged_runs_end_in_uniform_labeling(self):
        from repro.core import Configuration

        n = 4
        protocol = randomized_example1(n)
        schedule = oscillating_schedule(n)
        simulator = RandomizedSimulator(protocol, (0,) * n, seed=5)
        config = Configuration(one_token_labeling(n), (None,) * n)
        for t in range(400):
            config = simulator.step(config, schedule.active(t))
        # both absorbing labelings are uniform; after a long run we are there
        assert len(set(config.labeling.values)) == 1

    def test_join_probability_one_recovers_determinism(self):
        # with p = 1 the protocol is the deterministic Example 1 and the
        # adversarial schedule keeps it oscillating for the whole budget
        n = 4
        protocol = randomized_example1(n, join_probability=1.0)
        schedule = oscillating_schedule(n)
        simulator = RandomizedSimulator(protocol, (0,) * n, seed=0)
        ok, _ = simulator.run_until_label_constant(
            one_token_labeling(n), schedule, max_steps=300, quiet_window=2 * n
        )
        assert not ok

    def test_survival_decays_with_time(self):
        """The fraction of seeds still oscillating decays as the budget grows
        (geometric-decay signature)."""
        n = 4
        protocol = randomized_example1(n)
        schedule = oscillating_schedule(n)

        def surviving(budget):
            alive = 0
            for seed in range(30):
                simulator = RandomizedSimulator(protocol, (0,) * n, seed=seed)
                ok, _ = simulator.run_until_label_constant(
                    one_token_labeling(n),
                    schedule,
                    max_steps=budget,
                    quiet_window=2 * n,
                )
                alive += 0 if ok else 1
            return alive

        assert surviving(16) >= surviving(64) >= surviving(400)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            randomized_example1(2)
        with pytest.raises(ValidationError):
            randomized_example1(4, join_probability=0.0)
