"""Tests for the sweep runner (repro.analysis.sweeps)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionPolicy
from repro.analysis import SweepCase, SweepReport, run_sweep
from repro.core import (
    Labeling,
    RandomRFairSchedule,
    RunOutcome,
    Simulator,
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
)
from repro.exceptions import ValidationError
from repro.graphs import clique, unidirectional_ring

from tests.helpers import or_clique_protocol, random_bit_labeling


# Module-level pieces so the protocol and factory pickle for the
# multiprocessing path.
def _forward_bit(incoming, _x):
    (value,) = incoming.values()
    return value, value


def _copy_ring(n):
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _forward_bit) for i in range(n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name="copy-ring")


def _sync_factory(index, case):
    return SynchronousSchedule(len(case.inputs))


class _StatefulRandomFactory:
    """A schedule factory drawing per-case seeds from its own shared RNG.

    The regression shape for the parallel-reproducibility fix: because the
    factory is stateful, its results depend on the order (and process) in
    which it is invoked.  ``run_sweep`` must therefore invoke it in the
    parent, in case order — otherwise each worker chunk would re-run the
    RNG from its pickled initial state and diverge from the serial sweep.
    """

    def __init__(self, n, r, seed):
        self.n = n
        self.r = r
        self._rng = random.Random(seed)

    def __call__(self, index, case):
        return RandomRFairSchedule(self.n, self.r, seed=self._rng.randrange(2**32))


class TestRunSweep:
    def test_results_match_individual_runs(self):
        protocol = or_clique_protocol(clique(3))
        cases = [
            SweepCase(
                inputs=(0, 0, 0),
                labeling=random_bit_labeling(protocol.topology, seed=s),
                tag=s,
            )
            for s in range(6)
        ]
        report = run_sweep(protocol, cases, _sync_factory)
        assert len(report) == 6
        for case, result in zip(cases, report.results, strict=True):
            single = Simulator(protocol, case.inputs).run(
                case.labeling, SynchronousSchedule(3)
            )
            assert result.outcome == single.outcome
            assert result.label_rounds == single.label_rounds
            assert result.output_rounds == single.output_rounds
            assert result.steps_executed == single.steps_executed
            assert result.final_values == single.final.labeling.values
            assert result.outputs == single.final.outputs
            assert result.tag == case.tag

    def test_outcome_counts_and_histogram(self):
        protocol = _copy_ring(4)
        stable = Labeling.uniform(protocol.topology, 0)
        rotating = Labeling(protocol.topology, (1, 0, 0, 0))
        report = run_sweep(
            protocol,
            [
                SweepCase((0,) * 4, stable, tag="stable"),
                SweepCase((0,) * 4, rotating, tag="rotates"),
            ],
            _sync_factory,
        )
        counts = report.outcome_counts
        assert counts[RunOutcome.LABEL_STABLE] == 1
        assert counts[RunOutcome.OSCILLATING] == 1
        assert report.round_histogram("label") == {0: 1}
        assert not report.all_label_stable
        assert "cases=2" in report.describe()

    def test_plain_tuple_cases_and_index_order(self):
        protocol = or_clique_protocol(clique(3))
        cases = [
            ((0, 0, 0), random_bit_labeling(protocol.topology, seed=s))
            for s in range(4)
        ]
        report = run_sweep(protocol, cases, _sync_factory)
        assert [r.index for r in report.results] == [0, 1, 2, 3]
        assert all(r.tag is None for r in report.results)

    def test_schedule_factory_receives_index_and_case(self):
        protocol = or_clique_protocol(clique(3))
        seen = []

        def factory(index, case):
            seen.append((index, case.tag))
            return RandomRFairSchedule(3, r=2, seed=index)

        cases = [
            SweepCase(
                (0, 0, 0),
                random_bit_labeling(protocol.topology, seed=s),
                tag=f"case{s}",
            )
            for s in range(3)
        ]
        run_sweep(protocol, cases, factory)
        assert seen == [(0, "case0"), (1, "case1"), (2, "case2")]

    def test_empty_sweep(self):
        protocol = or_clique_protocol(clique(3))
        report = run_sweep(protocol, [], _sync_factory)
        assert len(report) == 0
        assert report.outcome_counts == {}
        assert report.worst_label_rounds is None

    def test_max_steps_respected(self):
        protocol = _copy_ring(3)
        rotating = Labeling(protocol.topology, (1, 0, 0))
        report = run_sweep(
            protocol,
            [SweepCase((0,) * 3, rotating)],
            lambda i, c: RandomRFairSchedule(3, r=1, seed=0),
            max_steps=10,
        )
        (result,) = report.results
        assert result.outcome is RunOutcome.TIMEOUT
        assert result.steps_executed == 10

    def test_bad_histogram_kind_rejected(self):
        report = SweepReport(results=())
        with pytest.raises(ValidationError):
            report.round_histogram("nonsense")

    def test_parallel_matches_serial(self):
        # Everything here pickles (module-level reactions and factory), so
        # the pool path is exercised where the platform allows it; on
        # restricted platforms run_sweep silently falls back to serial and
        # the equality still holds.
        protocol = _copy_ring(4)
        cases = [
            SweepCase(
                (0,) * 4,
                random_bit_labeling(protocol.topology, seed=s),
                tag=s,
            )
            for s in range(8)
        ]
        serial = run_sweep(protocol, cases, _sync_factory)
        parallel = run_sweep(
            protocol, cases, _sync_factory, policy=ExecutionPolicy(processes=2)
        )
        assert serial == parallel

    def test_seeded_random_schedules_bit_identical_serial_vs_parallel(self):
        # PR-2 regression: a stateful seeded factory must yield the exact
        # same report fanned out as in-process, because run_sweep invokes
        # the factory in the parent in case order and ships materialized
        # schedules to the workers.
        protocol = _copy_ring(4)
        cases = [
            SweepCase(
                (0,) * 4,
                random_bit_labeling(protocol.topology, seed=s),
                tag=s,
            )
            for s in range(10)
        ]
        serial = run_sweep(
            protocol, cases, _StatefulRandomFactory(4, 3, seed=42), max_steps=60
        )
        parallel = run_sweep(
            protocol,
            cases,
            _StatefulRandomFactory(4, 3, seed=42),
            max_steps=60,
            policy=ExecutionPolicy(processes=3),
        )
        assert serial == parallel

    def test_factory_invoked_in_parent_in_case_order_despite_fanout(self):
        protocol = _copy_ring(4)
        seen = []

        def factory(index, case):
            seen.append(index)
            return SynchronousSchedule(4)

        cases = [
            SweepCase((0,) * 4, random_bit_labeling(protocol.topology, seed=s))
            for s in range(6)
        ]
        run_sweep(
            protocol, cases, factory, policy=ExecutionPolicy(processes=3)
        )
        # the closure does not pickle, but it ran in this process either
        # way: one invocation per case, in order
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_unpicklable_protocol_falls_back_to_serial(self):
        protocol = or_clique_protocol(clique(3))  # closure reactions
        cases = [
            SweepCase((0, 0, 0), random_bit_labeling(protocol.topology, seed=s))
            for s in range(3)
        ]
        with pytest.warns(RuntimeWarning, match="do not pickle"):
            report = run_sweep(
                protocol,
                cases,
                _sync_factory,
                policy=ExecutionPolicy(processes=4),
            )
        assert len(report) == 3


class TestFanOutDiagnostics:
    """The serial fallback is never silent: it warns, or raises under
    ``strict=True`` (regression for the bare ``except Exception`` that made
    an 8-process sweep run on one core with no explanation)."""

    def _unpicklable_cases(self):
        protocol = or_clique_protocol(clique(3))  # closure reactions
        cases = [
            SweepCase((0, 0, 0), random_bit_labeling(protocol.topology, seed=s))
            for s in range(4)
        ]
        return protocol, cases

    def test_pickle_failure_warns_with_the_offending_error(self):
        protocol, cases = self._unpicklable_cases()
        with pytest.warns(RuntimeWarning) as captured:
            report = run_sweep(
                protocol,
                cases,
                _sync_factory,
                policy=ExecutionPolicy(processes=2),
            )
        assert len(report) == 4
        message = str(captured[0].message)
        assert "do not pickle" in message
        # the underlying pickle error is carried in the warning text
        assert "pickle" in message.lower()

    def test_strict_reraises_the_pickle_error(self):
        import pickle as _pickle

        protocol, cases = self._unpicklable_cases()
        with pytest.raises((AttributeError, TypeError, _pickle.PicklingError)):
            run_sweep(
                protocol,
                cases,
                _sync_factory,
                policy=ExecutionPolicy(processes=2),
                strict=True,
            )

    def test_serial_run_never_warns(self):
        import warnings as _warnings

        protocol, cases = self._unpicklable_cases()
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            report = run_sweep(protocol, cases, _sync_factory)  # no processes
        assert len(report) == 4

    def test_resilience_sweep_plumbs_strict(self):
        import pickle as _pickle

        from repro.analysis import run_resilience_sweep
        from repro.faults import NoFaults

        protocol, cases = self._unpicklable_cases()
        with pytest.raises((AttributeError, TypeError, _pickle.PicklingError)):
            run_resilience_sweep(
                protocol,
                cases,
                _sync_factory,
                lambda i, c: NoFaults(),
                policy=ExecutionPolicy(processes=2),
                strict=True,
            )


class TestSweepReportMerge:
    """The merge satellite: shard reports fold back to the one-shot report."""

    def _report(self, count=12):
        protocol = or_clique_protocol(clique(4))
        cases = [
            SweepCase((0,) * 4, random_bit_labeling(protocol.topology, seed=s))
            for s in range(count)
        ]
        return run_sweep(protocol, cases, _sync_factory)

    def test_merge_two_halves_equals_one_shot(self):
        report = self._report()
        lo = SweepReport(results=report.results[:5])
        hi = SweepReport(results=report.results[5:])
        assert lo.merge(hi) == report
        assert hi.merge(lo) == report  # commutative

    def test_empty_shards_are_identity(self):
        report = self._report(4)
        empty = SweepReport(results=())
        assert empty.merge(report) == report
        assert report.merge(empty) == report
        assert empty.merge(empty) == empty

    def test_overlapping_shards_are_rejected(self):
        report = self._report(4)
        lo = SweepReport(results=report.results[:3])
        hi = SweepReport(results=report.results[2:])
        with pytest.raises(ValidationError, match="overlapping shard"):
            lo.merge(hi)

    def test_type_mismatch_is_rejected(self):
        from repro.analysis import ResilienceReport

        report = self._report(2)
        with pytest.raises(ValidationError, match="share a type"):
            report.merge(ResilienceReport(results=()))
        # And the other way round: a plain shard cannot join a resilience
        # aggregate (a FaultCaseResult-less report would break its stats).
        with pytest.raises(ValidationError, match="share a type"):
            ResilienceReport(results=()).merge(report)

    @given(
        partition=st.lists(
            st.integers(min_value=0, max_value=3), min_size=12, max_size=12
        ),
        order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_partition_any_order_merges_to_one_shot(self, partition, order):
        """Property: split the sweep into up to 4 shards by an arbitrary
        assignment, fold them in an arbitrary order — always the one-shot
        report.  (Associativity + commutativity + identity in one shape.)"""
        report = self._report()
        shards = [
            SweepReport(
                results=tuple(
                    result
                    for result, bucket in zip(report.results, partition, strict=True)
                    if bucket == which
                )
            )
            for which in range(4)
        ]
        order.shuffle(shards)
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        assert merged == report
        assert [r.index for r in merged.results] == list(range(12))
