"""Equivalence and unit tests for the compiled fast-path engine.

The compiled path must be observationally identical to the reference
dict-based semantics of the paper's global transition: build both, drive them
with random activation sequences, and compare configuration-for-configuration.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompiledProtocol,
    Configuration,
    ConstantReaction,
    Labeling,
    LambdaReaction,
    LambdaStatefulReaction,
    RoundRobinSchedule,
    Simulator,
    StatefulProtocol,
    StatelessProtocol,
    SynchronousSchedule,
    TabularReaction,
    UniformReaction,
    binary,
    compile_protocol,
)
from repro.exceptions import ValidationError
from repro.graphs import bidirectional_ring, clique, unidirectional_ring

from tests.helpers import or_clique_protocol, random_bit_labeling


def reference_step(protocol, inputs, config, active):
    """The original object-based global transition, kept as the test oracle."""
    labeling = config.labeling
    updates = {}
    outputs = list(config.outputs)
    for i in active:
        incoming = labeling.incoming(i)
        if protocol.is_stateful:
            outgoing, y = protocol.reaction(i)(
                incoming, labeling.outgoing(i), inputs[i]
            )
        else:
            outgoing, y = protocol.reaction(i)(incoming, inputs[i])
        expected = protocol.topology.out_edges(i)
        if set(outgoing) != set(expected):
            raise ValidationError(f"node {i} labeled the wrong edge set")
        updates.update(outgoing)
        outputs[i] = y
    new_labeling = labeling.replace(updates) if updates else labeling
    return Configuration(new_labeling, tuple(outputs))


def assert_equivalent_on_random_runs(protocol, inputs, seed, steps=25):
    rng = random.Random(seed)
    simulator = Simulator(protocol, inputs)
    labeling = Labeling(
        protocol.topology,
        tuple(
            protocol.label_space.sample(rng) for _ in range(protocol.topology.m)
        ),
    )
    config = simulator.initial_configuration(labeling)
    n = protocol.n
    for _ in range(steps):
        active = frozenset(
            i for i in range(n) if rng.random() < 0.6
        ) or frozenset({rng.randrange(n)})
        expected = reference_step(protocol, simulator.inputs, config, active)
        actual = simulator.step(config, active)
        assert actual == expected
        config = actual


def tabular_xor_ring(n):
    """Bidirectional ring where each node broadcasts the XOR of its inputs."""
    topology = bidirectional_ring(n)
    reactions = []
    for i in range(n):
        in_edges = topology.in_edges(i)
        out_edges = topology.out_edges(i)
        table = {}
        for a in (0, 1):
            for b in (0, 1):
                for x in (0, 1):
                    bit = a ^ b ^ x
                    table[((a, b), x)] = ((bit,) * len(out_edges), bit)
        reactions.append(TabularReaction(in_edges, out_edges, table))
    return StatelessProtocol(topology, binary(), reactions, name="xor-ring")


def stateful_toggle_ring(n):
    """Stateful protocol: each node XORs its own outgoing label with incoming."""
    topology = unidirectional_ring(n)

    def make(i):
        out_edge = topology.out_edges(i)[0]

        def fn(incoming, own, x):
            (value,) = incoming.values()
            bit = value ^ own[out_edge]
            return {out_edge: bit}, bit

        return LambdaStatefulReaction(fn)

    return StatefulProtocol(topology, binary(), [make(i) for i in range(n)])


class TestEquivalence:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_uniform_reactions_match_reference(self, seed):
        assert_equivalent_on_random_runs(
            or_clique_protocol(clique(4)), (0,) * 4, seed
        )

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_tabular_reactions_match_reference(self, seed):
        protocol = tabular_xor_ring(4)
        inputs = tuple(random.Random(seed).randrange(2) for _ in range(4))
        assert_equivalent_on_random_runs(protocol, inputs, seed)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_lambda_reactions_match_reference(self, seed):
        topology = bidirectional_ring(4)

        def make(i):
            out_edges = topology.out_edges(i)

            def fn(incoming, x):
                total = (sum(incoming.values()) + x) % 2
                return {e: total for e in out_edges}, total

            return LambdaReaction(fn)

        protocol = StatelessProtocol(
            topology, binary(), [make(i) for i in range(4)]
        )
        assert_equivalent_on_random_runs(protocol, (1, 0, 1, 0), seed)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_stateful_reactions_match_reference(self, seed):
        assert_equivalent_on_random_runs(
            stateful_toggle_ring(4), (0,) * 4, seed
        )

    def test_constant_reactions_match_reference(self):
        topology = unidirectional_ring(3)
        protocol = StatelessProtocol(
            topology,
            binary(),
            [ConstantReaction(topology.out_edges(i), 1, output=i) for i in range(3)],
        )
        assert_equivalent_on_random_runs(protocol, (0,) * 3, seed=7)

    def test_full_runs_match_across_schedules(self):
        protocol = tabular_xor_ring(4)
        simulator = Simulator(protocol, (1, 0, 0, 1))
        labeling = random_bit_labeling(protocol.topology, seed=3)
        for schedule in (SynchronousSchedule(4), RoundRobinSchedule(4)):
            report = simulator.run(labeling, schedule, max_steps=200)
            # replay step-by-step with the oracle up to the detected cycle
            config = simulator.initial_configuration(labeling)
            for t in range(report.steps_executed):
                config = reference_step(
                    protocol, simulator.inputs, config, schedule.active(t)
                )
            assert config.labeling == report.final.labeling or report.oscillating


class TestFastPathSelection:
    def test_uniform_subclass_override_falls_back_to_react(self):
        topology = unidirectional_ring(3)

        class Inverting(UniformReaction):
            def react(self, incoming, x):
                outgoing, y = super().react(incoming, x)
                return {e: 1 - v for e, v in outgoing.items()}, 1 - y

        def fn(incoming, _x):
            (value,) = incoming.values()
            return value, value

        reactions = [Inverting(topology.out_edges(i), fn) for i in range(3)]
        protocol = StatelessProtocol(topology, binary(), reactions)
        sim = Simulator(protocol, (0,) * 3)
        config = sim.initial_configuration(Labeling.uniform(topology, 0))
        nxt = sim.step(config, frozenset({0}))
        # The overriding react() must win over the parent's fast path.
        assert nxt.labeling[(0, 1)] == 1
        assert nxt.outputs[0] == 1

    def test_compile_protocol_caches_per_protocol_object(self):
        protocol = or_clique_protocol(clique(3))
        assert compile_protocol(protocol) is compile_protocol(protocol)
        other = or_clique_protocol(clique(3))
        assert compile_protocol(other) is not compile_protocol(protocol)

    def test_cache_evicts_dead_protocols(self):
        # The cached CompiledProtocol must not keep its protocol alive, or
        # every throwaway protocol would leak a cache entry forever.
        import gc
        import weakref

        from repro.core.compiled import _CACHE

        protocol = or_clique_protocol(clique(3))
        compile_protocol(protocol)
        ref = weakref.ref(protocol)
        before = len(_CACHE)
        del protocol
        gc.collect()
        assert ref() is None
        assert len(_CACHE) < before

    def test_simulator_rejects_foreign_compiled_form(self):
        a = or_clique_protocol(clique(3))
        b = or_clique_protocol(clique(3))
        with pytest.raises(ValidationError):
            Simulator(a, (0, 0, 0), compiled=compile_protocol(b))

    def test_shared_compiled_form_across_simulators(self):
        protocol = or_clique_protocol(clique(3))
        compiled = compile_protocol(protocol)
        s1 = Simulator(protocol, (0,) * 3, compiled=compiled)
        s2 = Simulator(protocol, (0,) * 3, compiled=compiled)
        assert s1.compiled is s2.compiled

    def test_compiled_protocol_index_arrays(self):
        topology = bidirectional_ring(3)
        protocol = or_clique_protocol(topology)
        compiled = CompiledProtocol(protocol)
        position = topology.edge_position
        for i in range(3):
            assert compiled.in_positions[i] == tuple(
                position(e) for e in topology.in_edges(i)
            )
            assert compiled.out_positions[i] == tuple(
                position(e) for e in topology.out_edges(i)
            )


class TestValidation:
    def test_partial_labeling_still_rejected(self):
        topology = bidirectional_ring(3)

        def bad(incoming, x):
            return {topology.out_edges(0)[0]: 0}, 0  # labels one of two edges

        protocol = StatelessProtocol(
            topology, binary(), [LambdaReaction(bad)] * 3
        )
        sim = Simulator(protocol, (0,) * 3)
        config = sim.initial_configuration(Labeling.uniform(topology, 0))
        with pytest.raises(ValidationError):
            sim.step(config, frozenset({0}))

    def test_extra_edges_still_rejected(self):
        topology = unidirectional_ring(3)

        def bad(incoming, x):
            return {(0, 1): 0, (1, 2): 0}, 0  # labels another node's edge

        protocol = StatelessProtocol(
            topology, binary(), [LambdaReaction(bad)] * 3
        )
        sim = Simulator(protocol, (0,) * 3)
        config = sim.initial_configuration(Labeling.uniform(topology, 0))
        with pytest.raises(ValidationError):
            sim.step(config, frozenset({0}))

    def test_auto_vivifying_mapping_still_rejected(self):
        # A defaultdict that lacks an out-edge must not slip through by
        # growing to the right size while the adapter indexes into it.
        import collections

        topology = bidirectional_ring(3)

        def bad(incoming, x):
            outgoing = collections.defaultdict(int)
            outgoing[topology.out_edges(0)[0]] = 1  # one of two edges
            return outgoing, 0

        protocol = StatelessProtocol(
            topology, binary(), [LambdaReaction(bad)] * 3
        )
        sim = Simulator(protocol, (0,) * 3)
        config = sim.initial_configuration(Labeling.uniform(topology, 0))
        with pytest.raises(ValidationError):
            sim.step(config, frozenset({0}))

    def test_non_mapping_return_rejected(self):
        topology = unidirectional_ring(3)

        def bad(incoming, x):
            return [((0, 1), 0)], 0

        protocol = StatelessProtocol(
            topology, binary(), [LambdaReaction(bad)] * 3
        )
        sim = Simulator(protocol, (0,) * 3)
        config = sim.initial_configuration(Labeling.uniform(topology, 0))
        with pytest.raises(ValidationError):
            sim.step(config, frozenset({0}))

    def test_tabular_missing_row_raises_through_fast_path(self):
        topology = unidirectional_ring(2)
        table = {((0,), 0): ((0,), 0)}  # only covers incoming 0 with input 0
        reactions = [
            TabularReaction(
                topology.in_edges(i), topology.out_edges(i), table
            )
            for i in range(2)
        ]
        protocol = StatelessProtocol(topology, binary(), reactions)
        sim = Simulator(protocol, (0, 0))
        config = sim.initial_configuration(Labeling.uniform(topology, 1))
        with pytest.raises(ValidationError):
            sim.step(config, frozenset({0}))

    def test_mismatched_labeling_topology_rejected(self):
        protocol = or_clique_protocol(clique(3))
        sim = Simulator(protocol, (0,) * 3)
        foreign = Labeling.uniform(bidirectional_ring(3), 0)
        with pytest.raises(ValidationError):
            sim.run(foreign, SynchronousSchedule(3))
