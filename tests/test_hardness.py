"""Tests for the Section 4 hardness constructions.

Machine-verified dichotomies:
* EQ gadget (Thm B.4, r=1): label 1-stabilizing iff x != y (exact model
  check over all broadcast labelings);
* EQ latch gadget (Thm B.4, general r): label r-stabilizing iff x != y;
* DISJ gadget (Thm B.7): label r-stabilizing iff the sets are disjoint,
  with Claim B.8's explicit oscillating schedule replayed for intersecting
  inputs;
* String-Oscillation reduction (Thm B.11): the stateful protocol is label
  r-stabilizing iff the procedure halts from every string;
* metanode compiler (Thm B.14): preserves (non-)stabilization.
"""

import random

import pytest

from repro.core import (
    Labeling,
    RandomRFairSchedule,
    RoundRobinSchedule,
    RunOutcome,
    Simulator,
    SynchronousSchedule,
    default_inputs,
    minimal_fairness,
)
from repro.exceptions import ValidationError
from repro.hardness import (
    HALT,
    KNOWN_MAX_SNAKE_LENGTH,
    SnakeOrientation,
    abbott_katchalski_bounds,
    always_halt,
    disj_gadget_protocol,
    disj_oscillating_schedule,
    disj_snake_labeling,
    eq_gadget_protocol,
    eq_latch_gadget_protocol,
    eq_latch_snake_labeling,
    eq_snake_labeling,
    expand_inputs,
    expand_labeling,
    find_snake,
    halt_unless_all_b,
    halt_when_uniform,
    is_snake,
    metanode_compile,
    never_halt_rotate,
    normalized_snake,
    oscillating_start,
    procedure_labeling,
    run_procedure,
    stateful_protocol_from_g,
    toggle_forever,
    translate_snake,
)
from repro.stabilization import broadcast_labelings, decide_label_r_stabilizing


class TestSnake:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_finds_known_maximum(self, d):
        snake = find_snake(d)
        assert is_snake(snake, d)
        assert len(snake) == KNOWN_MAX_SNAKE_LENGTH[d]

    def test_d5_best_effort_is_valid_and_long(self):
        snake = find_snake(5)
        assert is_snake(snake, 5)
        assert len(snake) >= 10

    def test_verifier_rejects_chords(self):
        # 6-cycle with a chord: 0-1-3-2-6-4 has chord 0-2
        assert not is_snake([0, 1, 3, 2, 6, 4], 3)

    def test_verifier_rejects_non_adjacent_steps(self):
        assert not is_snake([0, 3, 1, 2], 2)

    def test_verifier_rejects_short_cycles(self):
        assert not is_snake([0, 1], 2)

    def test_translation_preserves_snakeness(self):
        snake = find_snake(3)
        for offset in range(8):
            assert is_snake(translate_snake(snake, offset), 3)

    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_normalized_snake_properties(self, d):
        snake = normalized_snake(d)
        assert is_snake(snake, d)
        assert 0 not in set(snake)

    def test_abbott_katchalski(self):
        low, high = abbott_katchalski_bounds(10)
        assert low == pytest.approx(0.3 * 1024)
        assert high == 512
        # known maxima respect the upper bound in its stated range (the
        # theorem is for large d; it already holds from d = 4 on)
        for d, length in KNOWN_MAX_SNAKE_LENGTH.items():
            if d >= 4:
                assert length <= 2 ** (d - 1)


class TestSnakeOrientation:
    def test_on_snake_moves_follow_cycle(self):
        d = 3
        snake = normalized_snake(d)
        orientation = SnakeOrientation(snake, d)
        # simultaneous application of phi to a snake vertex gives the successor
        for k, vertex in enumerate(snake):
            new = 0
            for coord in range(d):
                others = vertex & ~(1 << coord)
                if orientation.phi(coord, others):
                    new |= 1 << coord
            assert new == snake[(k + 1) % len(snake)]

    def test_rejects_snake_through_origin(self):
        with pytest.raises(ValidationError):
            SnakeOrientation([0, 1, 3, 2], 2)


class TestEqGadget:
    @pytest.mark.parametrize("n", [5, 6])
    def test_equal_inputs_not_one_stabilizing(self, n):
        snake = normalized_snake(n - 2)
        x = tuple(k % 2 for k in range(len(snake)))
        protocol = eq_gadget_protocol(n, x, x, snake)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            1,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing

    @pytest.mark.parametrize("n", [5, 6])
    def test_unequal_inputs_one_stabilizing(self, n):
        snake = normalized_snake(n - 2)
        x = tuple(k % 2 for k in range(len(snake)))
        y = tuple(1 - bit for bit in x)
        protocol = eq_gadget_protocol(n, x, y, snake)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            1,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert verdict.stabilizing

    def test_equal_inputs_cycle_the_snake(self):
        n = 6
        snake = normalized_snake(n - 2)
        x = tuple(k % 2 for k in range(len(snake)))
        protocol = eq_gadget_protocol(n, x, x, snake)
        simulator = Simulator(protocol, default_inputs(protocol))
        report = simulator.run(
            eq_snake_labeling(n, snake, 0, x[0]),
            SynchronousSchedule(n),
            max_steps=1000,
        )
        assert report.outcome is RunOutcome.OSCILLATING
        assert report.cycle_length == len(snake)

    def test_single_bit_difference_detected(self):
        # x and y differing in ONE position must still stabilize.
        n = 5
        snake = normalized_snake(n - 2)
        x = tuple(0 for _ in snake)
        y = tuple(1 if k == 0 else 0 for k in range(len(snake)))
        protocol = eq_gadget_protocol(n, x, y, snake)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            1,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert verdict.stabilizing

    def test_input_length_checked(self):
        with pytest.raises(ValidationError):
            eq_gadget_protocol(5, (0, 1), (0, 1))


class TestEqLatchGadget:
    def test_dichotomy_under_r_fair_model_check(self):
        n, r = 7, 2
        snake = normalized_snake(n - 4)
        segments = (len(snake) + 3 * r - 1) // (3 * r)
        equal = (1,) * segments
        unequal = (0,) * segments
        for y, expected in ((equal, False), (unequal, True)):
            protocol = eq_latch_gadget_protocol(n, equal, y, r, snake)
            verdict = decide_label_r_stabilizing(
                protocol,
                default_inputs(protocol),
                r,
                initial_labelings=broadcast_labelings(
                    protocol.topology, protocol.label_space
                ),
                budget=900_000,
            )
            assert verdict.stabilizing == expected

    def test_equal_inputs_oscillate_synchronously(self):
        n, r = 7, 2
        snake = normalized_snake(n - 4)
        segments = (len(snake) + 3 * r - 1) // (3 * r)
        x = (1,) * segments
        protocol = eq_latch_gadget_protocol(n, x, x, r, snake)
        simulator = Simulator(protocol, default_inputs(protocol))
        report = simulator.run(
            eq_latch_snake_labeling(n, snake, 0, 1),
            SynchronousSchedule(n),
            max_steps=1000,
        )
        assert report.outcome is RunOutcome.OSCILLATING

    def test_latch_absorbs(self):
        # Once (l2, l3) = (1, 1) the system must reach the frozen labeling.
        n, r = 7, 2
        snake = normalized_snake(n - 4)
        segments = (len(snake) + 3 * r - 1) // (3 * r)
        protocol = eq_latch_gadget_protocol(
            n, (1,) * segments, (0,) * segments, r, snake
        )
        topology = protocol.topology
        per_node = [1, 0, 1, 1, 0, 0, 0]
        labeling = Labeling(
            topology, tuple(per_node[u] for (u, _) in topology.edges)
        )
        report = Simulator(protocol, default_inputs(protocol)).run(
            labeling, SynchronousSchedule(n)
        )
        assert report.label_stable
        final = report.final.labeling
        assert final[(2, 0)] == 1 and final[(3, 0)] == 1


class TestDisjGadget:
    def test_intersecting_sets_oscillate_via_claim_b8_schedule(self):
        n = 5
        snake = normalized_snake(n - 2)
        q = 2
        x = (1, 0)
        y = (1, 1)  # intersection at element 0
        protocol = disj_gadget_protocol(n, x, y, snake)
        schedule = disj_oscillating_schedule(n, snake, q, element=0)
        assert minimal_fairness(schedule, 300) <= 2 * q
        report = Simulator(protocol, default_inputs(protocol)).run(
            disj_snake_labeling(n, snake, 0), schedule, max_steps=3000
        )
        assert report.outcome is RunOutcome.OSCILLATING

    def test_model_check_dichotomy(self):
        n, q = 5, 2
        r = 2 * q
        snake = normalized_snake(n - 2)
        cases = [
            ((1, 0), (1, 0), False),  # intersect at 0
            ((1, 1), (0, 1), False),  # intersect at 1
            ((1, 0), (0, 1), True),  # disjoint
            ((0, 0), (1, 1), True),  # disjoint (empty Alice)
        ]
        for x, y, expected in cases:
            protocol = disj_gadget_protocol(n, x, y, snake)
            verdict = decide_label_r_stabilizing(
                protocol,
                default_inputs(protocol),
                r,
                initial_labelings=broadcast_labelings(
                    protocol.topology, protocol.label_space
                ),
                budget=900_000,
            )
            assert verdict.stabilizing == expected, (x, y)

    def test_all_zero_labeling_is_stable(self):
        n = 5
        snake = normalized_snake(n - 2)
        protocol = disj_gadget_protocol(n, (1, 0), (0, 1), snake)
        from repro.stabilization import is_stable_labeling

        labeling = Labeling.uniform(protocol.topology, 0)
        assert is_stable_labeling(protocol, default_inputs(protocol), labeling)


class TestStringOscillation:
    def test_run_procedure_halts(self):
        halted, steps = run_procedure(always_halt, ("a", "b"), 100)
        assert halted and steps == 0

    def test_decider_on_library(self):
        cases = [
            (always_halt, None),
            (halt_when_uniform, None),
            (never_halt_rotate, "any"),
            (toggle_forever, "any"),
            (halt_unless_all_b, ("b", "b")),
        ]
        for g, expected in cases:
            witness = oscillating_start(g, ("a", "b"), 2)
            if expected is None:
                assert witness is None
            elif expected == "any":
                assert witness is not None
            else:
                assert witness == expected

    def test_witness_really_oscillates(self):
        witness = oscillating_start(halt_unless_all_b, ("a", "b"), 3)
        halted, _ = run_procedure(halt_unless_all_b, witness, 10_000)
        assert not halted


class TestStatefulReduction:
    @pytest.mark.parametrize(
        "g,name",
        [
            (always_halt, "always_halt"),
            (halt_when_uniform, "halt_when_uniform"),
            (never_halt_rotate, "never_halt_rotate"),
            (halt_unless_all_b, "halt_unless_all_b"),
        ],
    )
    @pytest.mark.parametrize("r", [1, 2])
    def test_equivalence_with_procedure(self, g, name, r):
        alphabet = ("a", "b")
        m = 2
        witness = oscillating_start(g, alphabet, m)
        protocol = stateful_protocol_from_g(g, alphabet, m)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            r,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert verdict.stabilizing == (witness is None), name

    def test_oscillation_witness_runs_forever(self):
        g = halt_unless_all_b
        protocol = stateful_protocol_from_g(g, ("a", "b"), 2)
        labeling = procedure_labeling(protocol, g, ("b", "b"))
        report = Simulator(protocol, default_inputs(protocol)).run(
            labeling, RoundRobinSchedule(protocol.n), max_steps=3000
        )
        # labels never stabilize (the controller's position keeps cycling)
        assert not report.label_stable
        assert report.cycle_length is not None

    def test_unique_stable_labeling_is_all_halt(self):
        from repro.stabilization import stable_labelings

        protocol = stateful_protocol_from_g(always_halt, ("a", "b"), 2)
        stables = stable_labelings(
            protocol,
            default_inputs(protocol),
            broadcast_labelings(protocol.topology, protocol.label_space),
        )
        assert len(stables) == 1
        assert all(label[1] == HALT for label in stables[0].values)


class TestMetanodeCompiler:
    def test_oscillation_preserved(self):
        g = never_halt_rotate
        protocol = stateful_protocol_from_g(g, ("a", "b"), 2)
        compiled = metanode_compile(protocol)
        assert not compiled.is_stateful
        assert compiled.n == 3 * protocol.n
        labeling = expand_labeling(
            protocol, procedure_labeling(protocol, g, ("a", "b"))
        )
        report = Simulator(compiled, expand_inputs(default_inputs(protocol))).run(
            labeling, SynchronousSchedule(compiled.n), max_steps=3000
        )
        assert not report.label_stable

    def test_stabilization_preserved(self):
        protocol = stateful_protocol_from_g(always_halt, ("a", "b"), 2)
        compiled = metanode_compile(protocol)
        inputs = expand_inputs(default_inputs(protocol))
        rng = random.Random(1)
        for seed in range(3):
            labeling = Labeling.random(
                compiled.topology, compiled.label_space, rng
            )
            report = Simulator(compiled, inputs).run(
                labeling,
                RandomRFairSchedule(compiled.n, r=3, seed=seed),
                max_steps=5000,
            )
            assert report.label_stable

    def test_converges_to_all_omega(self):
        from repro.hardness import OMEGA

        g = always_halt
        protocol = stateful_protocol_from_g(g, ("a", "b"), 2)
        compiled = metanode_compile(protocol)
        labeling = expand_labeling(
            protocol, procedure_labeling(protocol, g, ("a", "b"))
        )
        report = Simulator(compiled, expand_inputs(default_inputs(protocol))).run(
            labeling, SynchronousSchedule(compiled.n), max_steps=3000
        )
        assert report.label_stable
        assert set(report.final.labeling.values) == {OMEGA}

    def test_rejects_non_clique(self):
        from repro.core import LambdaStatefulReaction, StatefulProtocol, binary
        from repro.graphs import unidirectional_ring

        topo = unidirectional_ring(3)
        protocol = StatefulProtocol(
            topo, binary(), [LambdaStatefulReaction(lambda i, o, x: ({}, 0))] * 3
        )
        with pytest.raises(ValidationError):
            metanode_compile(protocol)
