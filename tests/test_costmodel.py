"""Tests for the symbolic cost model and its complexity gates.

Trajectory fitting (synthetic trajectories of known class land in that
class; garbage is flagged as a misfit), symbolic classification of the
model expressions, the benchmark-record gate (an injected complexity-class
regression in a fixture trajectory fails the check while the committed
records pass), and capacity-planning estimates with warm-cache discounts.
"""

import json
import math
from pathlib import Path

import pytest

pytest.importorskip("sympy")

from repro.analysis.costmodel import (
    BENCH_EXPECTATIONS,
    CANDIDATE_CLASSES,
    CLASS_ORDER,
    COST_MODELS,
    DEFAULT_CACHE_HIT_WORK,
    MIN_FIT_POINTS,
    ComplexitySpec,
    check_bench_dir,
    check_complexity,
    complexity_class,
    estimate_sweep_cost,
    failures_for_record,
    fit_trajectory,
    main as costmodel_main,
)
from repro.exceptions import ValidationError
from repro.policy import ExecutionPolicy

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

SIZES = [16.0, 32.0, 64.0, 128.0, 256.0]


def _trajectory(class_name, coefficient=1e-4, noise=1.0):
    """Synthetic (sizes, times) of a known class, optionally perturbed."""
    import sympy

    from repro.analysis.costmodel import x

    fn = sympy.lambdify(x, CANDIDATE_CLASSES[class_name], "math")
    return SIZES, [coefficient * fn(size) * noise for size in SIZES]


class TestFitTrajectory:
    @pytest.mark.parametrize(
        "class_name",
        ["constant", "logarithmic", "linear", "linearithmic", "quadratic",
         "cubic", "exponential"],
    )
    def test_exact_trajectories_classify_exactly(self, class_name):
        sizes, times = _trajectory(class_name)
        fit = fit_trajectory(sizes, times)
        assert fit.best == class_name
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)
        assert not fit.misfit
        assert fit.points == len(SIZES)

    def test_noisy_linear_still_classifies_linear(self):
        sizes = SIZES
        # +-10% multiplicative noise, fixed pattern
        times = [
            1e-4 * size * factor
            for size, factor in zip(sizes, [1.08, 0.93, 1.05, 0.95, 1.02], strict=True)
        ]
        fit = fit_trajectory(sizes, times)
        assert fit.best == "linear"
        assert not fit.misfit

    def test_coefficient_is_recovered(self):
        sizes, times = _trajectory("linear", coefficient=3.5e-5)
        fit = fit_trajectory(sizes, times)
        assert fit.coefficient == pytest.approx(3.5e-5, rel=1e-6)

    def test_garbage_is_a_misfit(self):
        # Alternating two orders of magnitude: no candidate class fits.
        sizes = SIZES
        times = [1e-5 if i % 2 else 1e-2 for i in range(len(sizes))]
        fit = fit_trajectory(sizes, times)
        assert fit.misfit
        assert fit.rmse > 1.0

    def test_regresses_compares_growth_order(self):
        sizes, times = _trajectory("quadratic")
        fit = fit_trajectory(sizes, times)
        assert fit.regresses(["linear"])
        assert fit.regresses(["linear", "linearithmic"])
        assert not fit.regresses(["quadratic"])
        assert not fit.regresses(["cubic"])

        sizes, times = _trajectory("constant")
        slower = fit_trajectory(sizes, times)
        # Sub-linear measurements never regress a linear declaration.
        assert not slower.regresses(["linear"])

    def test_restricted_candidate_set(self):
        sizes, times = _trajectory("quadratic")
        fit = fit_trajectory(sizes, times, classes=["linear", "quadratic"])
        assert fit.best == "quadratic"
        assert set(fit.residuals) == {"linear", "quadratic"}

    def test_validation(self):
        with pytest.raises(ValidationError, match="differ in length"):
            fit_trajectory([1.0, 2.0], [1.0])
        with pytest.raises(ValidationError, match="positive"):
            fit_trajectory([4.0, 8.0, 16.0], [1.0, -1.0, 1.0])
        with pytest.raises(ValidationError, match="distinct sizes"):
            fit_trajectory([4.0, 4.0, 4.0], [1.0, 1.0, 1.0])
        with pytest.raises(ValidationError, match="unknown complexity"):
            fit_trajectory(SIZES, [1.0] * len(SIZES), classes=["n^7"])


class TestSymbolicModels:
    def test_class_order_matches_candidates(self):
        assert set(CLASS_ORDER) == set(CANDIDATE_CLASSES)

    def test_engine_work_is_linear_in_every_size_symbol(self):
        model = COST_MODELS["engine.compiled"]
        for symbol in ("n", "d", "S", "C"):
            assert model.complexity_in(symbol) == "linear"

    def test_fused_dispatch_shrinks_with_the_window(self):
        fused = COST_MODELS["batch.fused"]
        packed = COST_MODELS["batch.packed"]
        params = dict(n=64, d=1, S=100, B=4096, k=64, C=1)
        assert fused.evaluate("dispatch", **params) < packed.evaluate(
            "dispatch", **params
        )
        # same element work either way
        assert fused.evaluate("work", **params) == packed.evaluate(
            "work", **params
        )

    def test_exploration_is_superpolynomial_in_n(self):
        work = COST_MODELS["exploration.frontier"].work
        assert complexity_class(work, "n") == "superpolynomial"
        # ... but linear in the fairness radius
        assert complexity_class(work, "r") == "linear"

    def test_quotient_divides_the_frontier_cost(self):
        frontier = COST_MODELS["exploration.frontier"]
        quotient = COST_MODELS["exploration.quotient"]
        params = dict(n=4, d=3, r=3, L=2, q=24.0)
        assert quotient.evaluate("work", **params) == pytest.approx(
            frontier.evaluate("work", **params) / 24.0
        )

    def test_missing_parameters_are_reported(self):
        with pytest.raises(ValidationError, match="needs parameter"):
            COST_MODELS["engine.compiled"].evaluate("work", n=4)

    def test_unknown_symbol_is_reported(self):
        with pytest.raises(ValidationError, match="unknown model symbol"):
            complexity_class(COST_MODELS["engine.compiled"].work, "z")


def _fixture_record(engine_times, width_times, history=()):
    """A BENCH_a08-shaped record with the given trajectory times."""
    sizes = [float(size) for size in SIZES]

    def entries(node_ts, width_ts):
        return {
            "test_a08_engine_node_scaling": {
                "kernel_median_s": 0.1,
                "sizes": sizes,
                "times_s": list(node_ts),
            },
            "test_a08_batch_width_scaling": {
                "kernel_median_s": 0.1,
                "sizes": sizes,
                "times_s": list(width_ts),
            },
        }

    record = {
        "bench": "bench_a08_complexity_scaling",
        "entries": entries(engine_times, width_times),
        "history": [
            {"entries": entries(node_ts, width_ts)}
            for node_ts, width_ts in history
        ],
    }
    return record


class TestBenchRecordGate:
    def setup_method(self):
        _, self.linear = _trajectory("linear")
        _, self.quadratic = _trajectory("quadratic")

    def test_linear_record_passes(self):
        record = _fixture_record(self.linear, self.linear)
        assert failures_for_record(record) == []

    def test_injected_quadratic_regression_fails(self):
        # The acceptance scenario: a complexity-class regression injected
        # into a fixture trajectory must fail the check.
        record = _fixture_record(self.quadratic, self.linear)
        failures = failures_for_record(record)
        assert len(failures) == 1
        assert "test_a08_engine_node_scaling" in failures[0]
        assert "'quadratic'" in failures[0]
        assert "regresses" in failures[0]

    def test_linearithmic_is_within_the_allowed_set(self):
        _, linearithmic = _trajectory("linearithmic")
        record = _fixture_record(linearithmic, self.linear)
        assert failures_for_record(record) == []

    def test_history_snapshots_are_gated_too(self):
        record = _fixture_record(
            self.linear,
            self.linear,
            history=[(self.quadratic, self.linear)],
        )
        failures = failures_for_record(record)
        assert len(failures) == 1
        assert "history[0]" in failures[0]

    def test_history_snapshots_without_ladders_are_skipped(self):
        record = _fixture_record(self.linear, self.linear)
        # e.g. a pre-ladder run folded into history: no sizes/times fields
        record["history"] = [
            {"entries": {"test_a08_engine_node_scaling": {"total_s": 1.0}}}
        ]
        assert failures_for_record(record) == []

    def test_record_with_no_fittable_ladder_fails(self):
        spec = BENCH_EXPECTATIONS[0]
        record = {"bench": spec.record, "entries": {spec.entry: {}}}
        failures = check_complexity(record, spec)
        assert len(failures) == 1
        assert "no fittable" in failures[0]
        assert str(MIN_FIT_POINTS) in failures[0]

    def test_misfit_trajectory_fails(self):
        garbage = [1e-5 if i % 2 else 1e-2 for i in range(len(SIZES))]
        record = _fixture_record(garbage, self.linear)
        failures = failures_for_record(record)
        assert len(failures) == 1
        assert "no candidate class fits" in failures[0]

    def test_unregistered_records_pass(self):
        assert failures_for_record({"bench": "bench_a99", "entries": {}}) == []

    def test_spec_validates_class_names(self):
        with pytest.raises(ValidationError, match="unknown complexity"):
            ComplexitySpec(record="r", entry="e", expected="n^7")

    def test_committed_benchmark_records_pass(self):
        # The records shipped in this repository must hold their own gate.
        recorded = sorted(BENCH_DIR.glob("BENCH_*.json"))
        assert recorded, "no committed benchmark records found"
        fitted = 0
        for path in recorded:
            record = json.loads(path.read_text())
            assert failures_for_record(record) == [], path.name
            if any(
                spec.record == record.get("bench")
                for spec in BENCH_EXPECTATIONS
            ):
                fitted += 1
        assert fitted >= 1  # the a08 ladders are registered and present


class TestCli:
    def _write(self, tmp_path, record):
        path = tmp_path / "BENCH_bench_a08_complexity_scaling.json"
        path.write_text(json.dumps(record))
        return path

    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        _, linear = _trajectory("linear")
        self._write(tmp_path, _fixture_record(linear, linear))
        assert costmodel_main([str(tmp_path)]) == 0
        assert "within declared class" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        _, linear = _trajectory("linear")
        _, quadratic = _trajectory("quadratic")
        self._write(tmp_path, _fixture_record(quadratic, linear))
        assert costmodel_main([str(tmp_path)]) == 1
        assert "COMPLEXITY GATE FAILED" in capsys.readouterr().out

    def test_committed_records_exit_zero(self, capsys):
        assert costmodel_main([str(BENCH_DIR)]) == 0

    def test_check_bench_dir_reports_unreadable_json(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{nope")
        failures, checked = check_bench_dir(tmp_path)
        assert checked == 0
        assert failures and "unreadable" in failures[0]

    def test_symbols_flag(self, capsys):
        assert costmodel_main(["--symbols"]) == 0
        out = capsys.readouterr().out
        assert "engine.compiled" in out
        assert "work" in out


class TestEstimateSweepCost:
    def test_cold_estimate_counts_every_case(self):
        estimate = estimate_sweep_cost(
            cases=100, nodes=16, degree=2, max_steps=200
        )
        assert estimate.layer == "engine.compiled"
        assert estimate.cached_cases == 0
        assert estimate.predicted_work == estimate.cold_work
        assert estimate.unit_work == pytest.approx(16 * 2 * 200)
        assert estimate.cache_discount == 0.0

    def test_warm_cases_are_discounted_to_a_lookup(self):
        cold = estimate_sweep_cost(cases=100, nodes=16, degree=2, max_steps=200)
        warm = estimate_sweep_cost(
            cases=100, nodes=16, degree=2, max_steps=200, cached_cases=60
        )
        assert warm.cold_work == cold.cold_work
        assert warm.predicted_work == pytest.approx(
            40 * warm.unit_work + 60 * DEFAULT_CACHE_HIT_WORK
        )
        assert 0.0 < warm.cache_discount < 1.0
        fully_warm = estimate_sweep_cost(
            cases=100, nodes=16, degree=2, max_steps=200, cached_cases=100
        )
        assert fully_warm.predicted_work == pytest.approx(
            100 * DEFAULT_CACHE_HIT_WORK
        )

    def test_batch_policy_selects_the_batch_layer(self):
        serial = estimate_sweep_cost(
            cases=10, nodes=16, degree=2, max_steps=100
        )
        batch = estimate_sweep_cost(
            cases=10,
            nodes=16,
            degree=2,
            max_steps=100,
            policy=ExecutionPolicy(executor="batch"),
        )
        assert batch.layer == "batch.fused"
        # same counted work, cheaper calibration constant
        assert batch.predicted_work == serial.predicted_work
        assert batch.predicted_seconds < serial.predicted_seconds

    def test_fan_out_divides_wall_time_not_work(self):
        one = estimate_sweep_cost(cases=10, nodes=16, degree=2, max_steps=100)
        four = estimate_sweep_cost(
            cases=10,
            nodes=16,
            degree=2,
            max_steps=100,
            policy=ExecutionPolicy(processes=4),
        )
        assert four.predicted_work == one.predicted_work
        assert four.predicted_seconds == pytest.approx(
            one.predicted_seconds / 4
        )

    def test_describe_mentions_the_essentials(self):
        estimate = estimate_sweep_cost(
            cases=10, nodes=16, degree=2, max_steps=100, cached_cases=3
        )
        text = estimate.describe()
        assert "3 warm" in text
        assert "engine.compiled" in text

    def test_validation(self):
        with pytest.raises(ValidationError, match="invalid case counts"):
            estimate_sweep_cost(
                cases=2, nodes=4, degree=1, max_steps=10, cached_cases=3
            )


def test_estimate_matches_symbolic_model_evaluation():
    """The estimator and the raw model agree on per-case work."""
    model = COST_MODELS["engine.compiled"]
    direct = model.evaluate("work", n=32, d=3, S=500, C=1, B=1, k=64)
    estimate = estimate_sweep_cost(cases=1, nodes=32, degree=3, max_steps=500)
    assert estimate.unit_work == pytest.approx(direct)
    assert math.isfinite(estimate.predicted_seconds)
