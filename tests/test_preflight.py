"""Plan preflight and its service integration.

:func:`repro.statics.verify_plan` moves two runtime surprises to submit
time: silent batch-fallback demotion and late fingerprint failure.  These
tests pin the preflight surface itself (offender collection with located
diagnostics, the per-case unhashable-input demotions, record shapes) and
the three places it is wired in: ``SweepService.submit(preflight=)``,
``plan_sweep(..., preflight=True)``, and the upgraded
:class:`~repro.exceptions.StaticAnalysisError` the fingerprint path now
raises instead of a bare, unlocated ``FingerprintError``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.analysis import SweepCase
from repro.core import StatelessProtocol, UniformReaction, binary
from repro.exceptions import (
    FingerprintError,
    StaticAnalysisError,
    ValidationError,
)
from repro.graphs import unidirectional_ring
from repro.service import SweepService, plan_sweep
from repro.statics import fingerprint_offenders, verify_plan, verify_protocol
from tests.helpers import random_bit_labeling
from tests.test_service_jobs import _plan, _ring, _sync


def _lambda_ring(n=3):
    """A ring whose reactions close over a lambda — unfingerprintable."""
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), lambda incoming, x: (0, x))
        for i in range(n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name="lambda-ring")


def _cases(protocol, count=2):
    n = protocol.n
    return [
        SweepCase((0,) * n, random_bit_labeling(protocol.topology, seed=s))
        for s in range(count)
    ]


class TestVerifyProtocol:
    def test_small_ring_fully_lifts(self):
        preflight = verify_protocol(_ring(4))
        assert preflight.fully_lifted
        assert preflight.predicted_lifted == (0, 1, 2, 3)
        assert not preflight.is_stateful
        assert "4/4 nodes lift" in preflight.describe()

    def test_record_is_json_able(self):
        record = verify_protocol(_ring(3)).record()
        json.dumps(record)
        assert record["predicted_fallback"] == []
        assert record["space_size"] == 2


class TestFingerprintOffenders:
    def test_clean_protocol_has_no_offenders(self):
        assert fingerprint_offenders(_ring(3)) == ()

    def test_lambda_is_located_at_its_source(self):
        offenders = fingerprint_offenders(_lambda_ring(), "plan.protocol")
        assert offenders, "the lambda must be found"
        assert {d.rule for d in offenders} == {"preflight/lambda"}
        diagnostic = offenders[0]
        assert diagnostic.severity == "error"
        assert diagnostic.path.endswith("test_preflight.py")
        assert diagnostic.line is not None
        assert "plan.protocol" in diagnostic.message

    def test_rng_state_names_the_attribute_path(self):
        class Holder:
            def __init__(self):
                self.rng = random.Random(3)

        (diagnostic,) = fingerprint_offenders(Holder(), "case")
        assert diagnostic.rule == "preflight/rng-state"
        assert "case.rng" in diagnostic.message

    def test_unregistered_opaque_type_is_flagged(self):
        class Opaque:
            __slots__ = ()

        (diagnostic,) = fingerprint_offenders(Opaque())
        assert diagnostic.rule == "preflight/unregistered-type"
        assert "register_fingerprint" in diagnostic.message


class TestVerifyPlan:
    def test_clean_plan_is_ok(self):
        plan, _, _ = _plan(count=3)
        preflight = verify_plan(plan)
        assert preflight.ok
        assert preflight.fingerprint_safe
        assert preflight.kind == "sweep"
        assert preflight.cases == 3
        assert preflight.case_demotions == ()
        assert preflight.protocol.fully_lifted
        json.dumps(preflight.record())

    def test_shared_lambda_is_reported_once(self):
        protocol = _lambda_ring(4)
        plan = plan_sweep(protocol, _cases(protocol), _sync, max_steps=20)
        preflight = verify_plan(plan)
        assert not preflight.ok
        assert not preflight.fingerprint_safe
        # 4 reactions x (protocol + 2 specs) all share one lambda: the
        # report collapses them to a single located diagnostic.
        assert len(preflight.errors) == 1
        with pytest.raises(StaticAnalysisError) as excinfo:
            preflight.raise_for_errors()
        assert "preflight/lambda" in str(excinfo.value)

    def test_unhashable_input_demotes_that_case_only(self):
        protocol = _ring(3)
        labeling = random_bit_labeling(protocol.topology, seed=0)
        cases = [
            SweepCase((0, 0, 0), labeling),
            SweepCase((0, [1], 0), labeling),  # a list input: unhashable
        ]
        plan = plan_sweep(protocol, cases, _sync, max_steps=20)
        preflight = verify_plan(plan)
        assert preflight.case_demotions == ((1, 1),)
        assert [d.rule for d in preflight.diagnostics] == [
            "preflight/unhashable-input"
        ]
        # Demotion is a performance warning, not a blocker.
        assert preflight.ok

    def test_record_sits_next_to_admission_shape(self):
        plan, _, _ = _plan(count=2)
        record = verify_plan(plan).record()
        assert record["ok"] is True
        assert set(record) == {
            "ok",
            "kind",
            "cases",
            "fingerprint_safe",
            "protocol",
            "case_demotions",
            "diagnostics",
        }


class TestPlanTimePreflight:
    """``plan_sweep(..., preflight=True)`` fails while the offending
    reaction is still one stack frame away."""

    def test_lambda_reaction_raises_at_plan_time(self):
        protocol = _lambda_ring()
        with pytest.raises(StaticAnalysisError) as excinfo:
            plan_sweep(
                protocol,
                _cases(protocol),
                _sync,
                max_steps=20,
                preflight=True,
            )
        diagnostics = excinfo.value.diagnostics
        assert {d.rule for d in diagnostics} == {"preflight/lambda"}
        assert diagnostics[0].path.endswith("test_preflight.py")

    def test_preflight_off_defers_to_fingerprint_time(self):
        protocol = _lambda_ring()
        plan = plan_sweep(protocol, _cases(protocol), _sync, max_steps=20)
        # Planning succeeded; the failure now comes at first fingerprint
        # use — but upgraded to a located StaticAnalysisError rather than
        # the bare FingerprintError canonicalization raises internally.
        with pytest.raises(StaticAnalysisError) as excinfo:
            plan.plan_fingerprint
        assert isinstance(excinfo.value.__cause__, FingerprintError)
        assert "plan.protocol" in str(excinfo.value)
        assert {d.rule for d in excinfo.value.diagnostics} == {
            "preflight/lambda"
        }
        assert excinfo.value.diagnostics[0].line is not None


class TestSubmitPreflight:
    def test_warn_records_preflight_next_to_admission(self, tmp_path):
        plan, _, _ = _plan(count=2)
        with SweepService(records_dir=tmp_path) as service:
            service.result(service.submit(plan), timeout=30)
        (path,) = tmp_path.glob("JOB_*.json")
        entries = json.loads(path.read_text())["entries"]
        assert entries["preflight"]["ok"] is True
        assert entries["preflight"]["kind"] == "sweep"
        assert entries["preflight"]["cases"] == 2
        assert entries["preflight"]["fingerprint_safe"] is True
        assert entries["preflight"]["protocol"]["predicted_fallback"] == []

    def test_off_skips_the_check_and_the_record(self, tmp_path):
        plan, _, _ = _plan(count=2)
        with SweepService(records_dir=tmp_path) as service:
            service.result(service.submit(plan, preflight="off"), timeout=30)
        (path,) = tmp_path.glob("JOB_*.json")
        entries = json.loads(path.read_text())["entries"]
        assert "preflight" not in entries

    def test_strict_rejects_before_enqueue(self):
        protocol = _lambda_ring()
        plan = plan_sweep(protocol, _cases(protocol), _sync, max_steps=20)
        with SweepService() as service:
            with pytest.raises(StaticAnalysisError, match="preflight"):
                service.submit(plan, preflight="strict")
            assert service.jobs() == []

    def test_invalid_mode_is_rejected(self):
        plan, _, _ = _plan(count=2)
        with SweepService() as service:
            with pytest.raises(ValidationError, match="preflight"):
                service.submit(plan, preflight="sometimes")
