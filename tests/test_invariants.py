"""Global model invariants, hypothesis-tested.

These pin down semantic facts every construction in the library relies on:

* a stable labeling is absorbing under *every* schedule;
* the engine's periodic and trace semantics agree;
* states-graph paths are exactly the r-fair runs (fairness of every emitted
  path; the proof's initialization vertices are in the graph);
* label stabilization implies output stabilization (Section 2.2's hierarchy).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplicitSchedule,
    Labeling,
    RandomRFairSchedule,
    RoundRobinSchedule,
    Simulator,
    SynchronousSchedule,
    default_inputs,
    minimal_fairness,
)
from repro.graphs import clique
from repro.stabilization import (
    StatesGraph,
    broadcast_labelings,
    is_stable_labeling,
    stable_labelings,
)

from tests.helpers import or_clique_protocol, random_bit_labeling


def random_schedule(n, seed, steps=12):
    rng = random.Random(seed)
    plan = []
    for _ in range(steps):
        active = {i for i in range(n) if rng.random() < 0.6}
        if not active:
            active = {rng.randrange(n)}
        plan.append(active)
    return ExplicitSchedule(n, plan, cycle=True)


class TestStableLabelingsAbsorbing:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_stable_labelings_never_move(self, seed):
        protocol = or_clique_protocol(clique(3))
        inputs = default_inputs(protocol)
        stables = stable_labelings(
            protocol,
            inputs,
            broadcast_labelings(protocol.topology, protocol.label_space),
        )
        schedule = random_schedule(3, seed)
        simulator = Simulator(protocol, inputs)
        for labeling in stables:
            trace = simulator.run_trace(labeling, schedule, steps=10)
            assert all(config.labeling == labeling for config in trace)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_runs_that_stabilize_end_in_fixed_points(self, seed):
        protocol = or_clique_protocol(clique(3))
        inputs = default_inputs(protocol)
        labeling = random_bit_labeling(protocol.topology, seed)
        report = Simulator(protocol, inputs).run(
            labeling, RandomRFairSchedule(3, r=2, seed=seed), max_steps=4000
        )
        if report.label_stable:
            assert is_stable_labeling(protocol, inputs, report.final.labeling)


class TestEngineSemanticsAgree:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_run_and_run_trace_agree(self, seed):
        protocol = or_clique_protocol(clique(3))
        inputs = default_inputs(protocol)
        labeling = random_bit_labeling(protocol.topology, seed)
        schedule = RoundRobinSchedule(3)
        report = Simulator(protocol, inputs).run(
            labeling, schedule, record_trace=True
        )
        trace = Simulator(protocol, inputs).run_trace(
            labeling, schedule, steps=report.steps_executed
        )
        # report.trace holds configs 0..steps-1; the config at `steps` is the
        # detected repeat and equals the cycle-start config
        assert report.trace == trace[: len(report.trace)]
        assert trace[-1] == trace[report.cycle_start]

    def test_label_stable_implies_output_stable(self):
        protocol = or_clique_protocol(clique(4))
        inputs = default_inputs(protocol)
        for seed in range(10):
            labeling = random_bit_labeling(protocol.topology, seed)
            report = Simulator(protocol, inputs).run(
                labeling, SynchronousSchedule(4)
            )
            if report.label_stable:
                assert report.output_stable
                assert report.output_rounds is not None


class TestStatesGraphIsTheRunSpace:
    def test_paths_are_fair_runs(self):
        protocol = or_clique_protocol(clique(3))
        inputs = default_inputs(protocol)
        graph = StatesGraph(
            protocol,
            inputs,
            r=2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        # every state's path from its root forms a valid r-fair prefix:
        # replaying the actions through the engine reaches the same labeling
        simulator = Simulator(protocol, inputs)
        checked = 0
        for k in range(len(graph)):
            actions = graph.path_to(k)
            if not actions or len(actions) > 6:
                continue
            root = graph.root_of(k)
            labeling = Labeling(protocol.topology, graph.labeling_of(root))
            schedule = ExplicitSchedule(3, actions, cycle=False)
            trace = simulator.run_trace(labeling, schedule, steps=len(actions))
            assert trace[-1].labeling.values == graph.labeling_of(k)
            checked += 1
        assert checked > 10

    def test_initialization_vertices_have_full_countdowns(self):
        protocol = or_clique_protocol(clique(3))
        inputs = default_inputs(protocol)
        graph = StatesGraph(
            protocol,
            inputs,
            r=2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        for k in graph.initial_indices:
            _, countdown = graph.states[k]
            assert countdown == (2, 2, 2)

    def test_witness_schedules_are_r_fair(self):
        from repro.stabilization import decide_label_r_stabilizing

        protocol = or_clique_protocol(clique(4))
        inputs = default_inputs(protocol)
        verdict = decide_label_r_stabilizing(
            protocol,
            inputs,
            3,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing
        schedule = verdict.witness.to_schedule(4)
        assert minimal_fairness(schedule, 500) <= 3
