"""Adversarial schedules: fairness guarantees and exactness.

The satellite contract for PR 2: the greedy adversary never violates its
declared r-fairness bound, and on a paper-sized clique its delay matches the
exhaustive worst case computed from the Theorem 3.1 states-graph.
"""

import pytest

from repro.core import (
    Labeling,
    RunOutcome,
    Simulator,
    default_inputs,
    is_r_fair,
)
from repro.exceptions import ValidationError
from repro.faults import (
    GreedyAdversarySchedule,
    MinimaxAdversarySchedule,
    exhaustive_worst_case_delay,
)
from repro.graphs import clique
from repro.stabilization import (
    example1_protocol,
    one_token_labeling,
    stable_labeling_pair,
)

from tests.helpers import copy_ring_protocol, or_clique_protocol, random_bit_labeling


class TestGreedyFairness:
    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_declared_r_fairness_never_violated(self, r):
        protocol = or_clique_protocol(clique(4))
        schedule = GreedyAdversarySchedule(
            protocol,
            default_inputs(protocol),
            random_bit_labeling(protocol.topology, seed=r),
            r=r,
        )
        assert is_r_fair(schedule, r, horizon=80)

    def test_fairness_holds_past_the_candidate_cap(self):
        # With the cap forcing the sampled candidate family, forced nodes
        # must still always be included.
        protocol = or_clique_protocol(clique(6))
        schedule = GreedyAdversarySchedule(
            protocol,
            default_inputs(protocol),
            random_bit_labeling(protocol.topology, seed=0),
            r=2,
            candidate_cap=1,
        )
        assert is_r_fair(schedule, 2, horizon=60)

    def test_memoized_steps_are_stable(self):
        protocol = or_clique_protocol(clique(3))
        schedule = GreedyAdversarySchedule(
            protocol,
            default_inputs(protocol),
            one_token_labeling(3),
            r=2,
        )
        first = [schedule.active(t) for t in range(20)]
        again = [schedule.active(t) for t in range(20)]
        assert first == again

    def test_invalid_parameters_rejected(self):
        protocol = or_clique_protocol(clique(3))
        labeling = one_token_labeling(3)
        with pytest.raises(ValidationError):
            GreedyAdversarySchedule(protocol, (0,) * 3, labeling, r=0)
        with pytest.raises(ValidationError):
            GreedyAdversarySchedule(protocol, (0,) * 2, labeling, r=1)
        with pytest.raises(ValidationError):
            GreedyAdversarySchedule(protocol, (0,) * 3, labeling, r=1, candidate_cap=0)


class TestExhaustiveWorstCase:
    def test_example1_unbounded_at_n_minus_1_fairness(self):
        # The paper's tightness direction for Theorem 3.1: on K_3, a
        # 2-fair adversary can rotate the token forever.
        protocol = example1_protocol(3)
        worst = exhaustive_worst_case_delay(
            protocol, default_inputs(protocol), one_token_labeling(3), r=2
        )
        assert worst.delay is None
        assert not worst.bounded
        assert len(worst.loop) > 0

    def test_example1_bounded_under_synchrony(self):
        # r=1 forces full activation every step: token -> two tokens ->
        # all-one, exactly 2 steps, no adversarial freedom at all.
        protocol = example1_protocol(3)
        worst = exhaustive_worst_case_delay(
            protocol, default_inputs(protocol), one_token_labeling(3), r=1
        )
        assert worst.delay == 2
        assert worst.prefix == (frozenset({0, 1, 2}),) * 2
        assert worst.loop == ()

    def test_stable_start_has_zero_delay(self):
        protocol = example1_protocol(3)
        zero, _ = stable_labeling_pair(3)
        worst = exhaustive_worst_case_delay(
            protocol, default_inputs(protocol), zero, r=2
        )
        assert worst.delay == 0
        assert worst.prefix == ()

    def test_copy_ring_rotation_is_unbounded(self):
        protocol = copy_ring_protocol(3)
        mixed = Labeling(protocol.topology, (1, 0, 0))
        worst = exhaustive_worst_case_delay(
            protocol, default_inputs(protocol), mixed, r=2
        )
        assert worst.delay is None

    def test_witness_schedule_realizes_the_delay(self):
        # Replaying the bounded witness through the engine stabilizes in
        # exactly the computed number of rounds.
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        worst = exhaustive_worst_case_delay(
            protocol, inputs, one_token_labeling(3), r=1
        )
        report = Simulator(protocol, inputs).run(
            one_token_labeling(3), worst.schedule(), max_steps=100
        )
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.label_rounds == worst.delay

    def test_unbounded_witness_oscillates_forever(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        worst = exhaustive_worst_case_delay(
            protocol, inputs, one_token_labeling(3), r=2
        )
        report = Simulator(protocol, inputs).run(
            one_token_labeling(3), worst.schedule(), max_steps=500
        )
        assert report.outcome is RunOutcome.OSCILLATING
        # and the witness itself honors the fairness bound
        assert is_r_fair(worst.schedule(), 2, horizon=100)


class TestGreedyMatchesExhaustive:
    """The PR-2 satellite: greedy delay == states-graph worst case on K_3."""

    def test_unbounded_case_matches(self):
        # Exhaustive: unbounded (r = n-1).  The greedy adversary must also
        # sustain the oscillation — it never stabilizes within any budget.
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        token = one_token_labeling(3)
        worst = exhaustive_worst_case_delay(protocol, inputs, token, r=2)
        assert worst.delay is None
        schedule = GreedyAdversarySchedule(protocol, inputs, token, r=2)
        report = Simulator(protocol, inputs).run(token, schedule, max_steps=400)
        assert report.outcome is RunOutcome.TIMEOUT

    def test_bounded_case_matches(self):
        # Exhaustive: delay 2 under r=1 (forced synchrony).  The greedy
        # adversary has the same single choice per step.
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        token = one_token_labeling(3)
        worst = exhaustive_worst_case_delay(protocol, inputs, token, r=1)
        schedule = GreedyAdversarySchedule(protocol, inputs, token, r=1)
        report = Simulator(protocol, inputs).run(token, schedule, max_steps=100)
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.label_rounds == worst.delay == 2


class TestMinimaxAdversarySchedule:
    def test_replays_unbounded_witness(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        schedule = MinimaxAdversarySchedule(
            protocol, inputs, one_token_labeling(3), r=2
        )
        assert schedule.delay is None
        report = Simulator(protocol, inputs).run(
            one_token_labeling(3), schedule, max_steps=300
        )
        # eventually periodic => the engine proves the oscillation exactly
        assert report.outcome is RunOutcome.OSCILLATING

    def test_replays_bounded_witness(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        schedule = MinimaxAdversarySchedule(
            protocol, inputs, one_token_labeling(3), r=1
        )
        assert schedule.delay == 2
        report = Simulator(protocol, inputs).run(
            one_token_labeling(3), schedule, max_steps=100
        )
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.label_rounds == 2

    def test_is_r_fair(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        schedule = MinimaxAdversarySchedule(
            protocol, inputs, one_token_labeling(3), r=2
        )
        assert is_r_fair(schedule, 2, horizon=100)
