"""Tests for the circuit, branching-program, and Turing-machine substrates."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.substrates.branching_programs import (
    BPNode,
    BranchingProgram,
    equality_bp,
    from_function as bp_from_function,
    majority_bp,
    parity_bp,
    random_bp,
    threshold_bp,
)
from repro.substrates.circuits import (
    Circuit,
    CircuitBuilder,
    Gate,
    and_circuit,
    equality_circuit,
    from_function as circuit_from_function,
    majority_circuit,
    or_circuit,
    parity_circuit,
    random_circuit,
    threshold_circuit,
)
from repro.substrates.turing import (
    ConfigurationGraph,
    advice_equality_machine,
    contains_one_machine,
    first_equals_last_machine,
    mod_machine,
    parity_machine,
)


def all_inputs(n):
    return list(product((0, 1), repeat=n))


class TestCircuitModel:
    def test_gate_validation(self):
        with pytest.raises(ValidationError):
            Gate("NAND", (0, 1))
        with pytest.raises(ValidationError):
            Gate("NOT", (0, 1))

    def test_topological_order_enforced(self):
        with pytest.raises(ValidationError):
            Circuit(1, [Gate("NOT", (0,))], output=0)  # self-reference

    def test_const_and_input(self):
        builder = CircuitBuilder(2)
        out = builder.and_(builder.input(0), builder.const(1))
        circuit = builder.build(out)
        assert circuit.evaluate((1, 0)) == 1
        assert circuit.evaluate((0, 0)) == 0

    def test_depth(self):
        circuit = parity_circuit(4)
        assert circuit.depth() == 3

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_parity(self, n):
        circuit = parity_circuit(n)
        for x in all_inputs(n):
            assert circuit.evaluate(x) == sum(x) % 2

    @pytest.mark.parametrize("n", [1, 3, 4, 6])
    def test_majority_matches_paper_definition(self, n):
        circuit = majority_circuit(n)
        for x in all_inputs(n):
            assert circuit.evaluate(x) == (1 if sum(x) >= n / 2 else 0)

    @pytest.mark.parametrize("n,k", [(4, 0), (4, 2), (4, 5), (5, 3)])
    def test_threshold(self, n, k):
        circuit = threshold_circuit(n, k)
        for x in all_inputs(n):
            assert circuit.evaluate(x) == (1 if sum(x) >= k else 0)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_equality_even(self, n):
        circuit = equality_circuit(n)
        half = n // 2
        for x in all_inputs(n):
            expected = 1 if x[:half] == x[half:] else 0
            assert circuit.evaluate(x) == expected

    def test_equality_odd_is_constant_zero(self):
        circuit = equality_circuit(3)
        assert all(circuit.evaluate(x) == 0 for x in all_inputs(3))

    def test_and_or(self):
        assert and_circuit(3).evaluate((1, 1, 1)) == 1
        assert and_circuit(3).evaluate((1, 0, 1)) == 0
        assert or_circuit(3).evaluate((0, 0, 0)) == 0
        assert or_circuit(3).evaluate((0, 1, 0)) == 1

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_from_function_roundtrip(self, seed):
        import random as random_module

        rng = random_module.Random(seed)
        n = rng.randrange(1, 5)
        truth = {x: rng.randrange(2) for x in all_inputs(n)}
        circuit = circuit_from_function(lambda *bits: truth[bits], n)
        for x in all_inputs(n):
            assert circuit.evaluate(x) == truth[x]

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_random_circuit_total(self, seed):
        circuit = random_circuit(3, 10, seed=seed)
        for x in all_inputs(3):
            assert circuit.evaluate(x) in (0, 1)

    def test_table_builder(self):
        builder = CircuitBuilder(2)
        wires = [builder.input(0), builder.input(1)]
        out = builder.table(wires, lambda a, b: a ^ b)
        circuit = builder.build(out)
        for x in all_inputs(2):
            assert circuit.evaluate(x) == x[0] ^ x[1]


class TestBranchingPrograms:
    def test_node_validation(self):
        with pytest.raises(ValidationError):
            BranchingProgram(1, [BPNode(var=0, low=0, high=1)])  # self loop

    @pytest.mark.parametrize("n", [1, 2, 4, 5])
    def test_parity(self, n):
        bp = parity_bp(n)
        for x in all_inputs(n):
            assert bp.evaluate(x) == sum(x) % 2

    @pytest.mark.parametrize("n", [1, 3, 4, 6])
    def test_majority(self, n):
        bp = majority_bp(n)
        for x in all_inputs(n):
            assert bp.evaluate(x) == (1 if sum(x) >= n / 2 else 0)

    @pytest.mark.parametrize("n,k", [(3, 0), (3, 2), (3, 4)])
    def test_threshold(self, n, k):
        bp = threshold_bp(n, k)
        for x in all_inputs(n):
            assert bp.evaluate(x) == (1 if sum(x) >= k else 0)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_equality(self, n):
        bp = equality_bp(n)
        half = n // 2
        for x in all_inputs(n):
            assert bp.evaluate(x) == (1 if x[:half] == x[half:] else 0)

    def test_equality_odd(self):
        bp = equality_bp(3)
        assert all(bp.evaluate(x) == 0 for x in all_inputs(3))

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_from_function_roundtrip(self, seed):
        import random as random_module

        rng = random_module.Random(seed)
        n = rng.randrange(1, 5)
        truth = {x: rng.randrange(2) for x in all_inputs(n)}
        bp = bp_from_function(lambda *bits: truth[bits], n)
        for x in all_inputs(n):
            assert bp.evaluate(x) == truth[x]

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_random_bp_total(self, seed):
        bp = random_bp(4, 12, seed=seed)
        for x in all_inputs(4):
            assert bp.evaluate(x) in (0, 1)

    def test_bp_and_circuit_agree_on_standard_functions(self):
        for n in (2, 4):
            for x in all_inputs(n):
                assert majority_bp(n).evaluate(x) == majority_circuit(n).evaluate(x)
                assert parity_bp(n).evaluate(x) == parity_circuit(n).evaluate(x)
                assert equality_bp(n).evaluate(x) == equality_circuit(n).evaluate(x)


class TestTuringMachines:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_parity_machine(self, n):
        machine = parity_machine()
        for x in all_inputs(n):
            assert machine.run(x) == sum(x) % 2

    @pytest.mark.parametrize("modulus", [2, 3, 4])
    def test_mod_machine(self, modulus):
        machine = mod_machine(modulus, accept_residues=(0,))
        for x in all_inputs(5):
            assert machine.run(x) == (1 if sum(x) % modulus == 0 else 0)

    def test_contains_one(self):
        machine = contains_one_machine()
        for x in all_inputs(4):
            assert machine.run(x) == (1 if any(x) else 0)

    def test_first_equals_last(self):
        machine = first_equals_last_machine()
        for n in (1, 2, 5):
            for x in all_inputs(n):
                assert machine.run(x) == (1 if x[0] == x[-1] else 0)

    def test_advice_equality(self):
        machine = advice_equality_machine()
        for x in all_inputs(3):
            advice = "101"
            expected = 1 if "".join(map(str, x)) == advice else 0
            assert machine.run(x, advice=advice) == expected

    def test_configuration_graph_size(self):
        machine = parity_machine()
        graph = ConfigurationGraph(machine, n=5)
        # |Z| = |Q| * |Gamma|^s * s * n * advice_positions
        assert graph.size == 4 * 1 * 1 * 5 * 1

    def test_halting_configs_self_loop(self):
        machine = contains_one_machine()
        graph = ConfigurationGraph(machine, n=3)
        halted = ("accept", ("#",), 0, 1, 0)
        assert graph.pi(halted, 0) == halted
        assert graph.pi(halted, 1) == halted

    def test_accepting_predicate(self):
        machine = contains_one_machine()
        graph = ConfigurationGraph(machine, n=2)
        assert graph.accepting(("accept", ("#",), 0, 0, 0))
        assert not graph.accepting(("scan", ("#",), 0, 0, 0))
