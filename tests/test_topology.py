"""Unit tests for Topology and the standard graph families."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.graphs import (
    Topology,
    bidirectional_ring,
    binary_tree,
    clique,
    hypercube,
    path,
    random_strongly_connected,
    star,
    torus,
    unidirectional_ring,
)


class TestTopology:
    def test_basic_structure(self):
        topo = Topology(3, [(0, 1), (1, 2), (2, 0)])
        assert topo.n == 3
        assert topo.m == 3
        assert topo.out_edges(0) == ((0, 1),)
        assert topo.in_edges(0) == ((2, 0),)
        assert topo.out_neighbors(1) == (2,)
        assert topo.in_neighbors(1) == (0,)

    def test_edge_position_is_canonical(self):
        topo = Topology(3, [(0, 1), (1, 2), (2, 0)])
        for k, edge in enumerate(topo.edges):
            assert topo.edge_position(edge) == k

    def test_rejects_self_loop(self):
        with pytest.raises(ValidationError):
            Topology(2, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValidationError):
            Topology(2, [(0, 1), (0, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            Topology(2, [(0, 2)])

    def test_unknown_edge_position_raises(self):
        topo = Topology(2, [(0, 1)])
        with pytest.raises(ValidationError):
            topo.edge_position((1, 0))

    def test_equality_ignores_edge_order(self):
        a = Topology(3, [(0, 1), (1, 2), (2, 0)])
        b = Topology(3, [(2, 0), (0, 1), (1, 2)])
        assert a == b
        assert hash(a) == hash(b)


class TestStandardFamilies:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_unidirectional_ring(self, n):
        topo = unidirectional_ring(n)
        assert topo.m == n
        for i in range(n):
            assert topo.out_neighbors(i) == ((i + 1) % n,)
            assert topo.in_neighbors(i) == ((i - 1) % n,)

    @pytest.mark.parametrize("n", [3, 4, 7])
    def test_bidirectional_ring(self, n):
        topo = bidirectional_ring(n)
        assert topo.m == 2 * n
        for i in range(n):
            assert set(topo.out_neighbors(i)) == {(i + 1) % n, (i - 1) % n}
            assert set(topo.in_neighbors(i)) == {(i + 1) % n, (i - 1) % n}

    def test_bidirectional_ring_of_two(self):
        topo = bidirectional_ring(2)
        assert topo.m == 2
        assert topo.has_edge(0, 1) and topo.has_edge(1, 0)

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_clique(self, n):
        topo = clique(n)
        assert topo.m == n * (n - 1)
        for i in range(n):
            assert topo.in_degree(i) == n - 1
            assert topo.out_degree(i) == n - 1

    def test_star(self):
        topo = star(5)
        assert topo.out_degree(0) == 4
        assert all(topo.out_degree(i) == 1 for i in range(1, 5))

    def test_path(self):
        topo = path(4)
        assert topo.m == 6
        assert topo.out_neighbors(0) == (1,)
        assert set(topo.out_neighbors(1)) == {0, 2}

    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_hypercube(self, d):
        topo = hypercube(d)
        assert topo.n == 2**d
        assert topo.m == d * 2**d
        for u in range(topo.n):
            for v in topo.out_neighbors(u):
                assert bin(u ^ v).count("1") == 1

    def test_torus(self):
        topo = torus(3, 4)
        assert topo.n == 12
        for i in range(12):
            assert topo.out_degree(i) == 4

    def test_binary_tree(self):
        topo = binary_tree(2)
        assert topo.n == 7
        assert set(topo.out_neighbors(0)) == {1, 2}

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=10),
    )
    def test_random_strongly_connected_is_strongly_connected(self, n, extra):
        from repro.graphs import is_strongly_connected

        topo = random_strongly_connected(n, extra, seed=extra * 37 + n)
        assert is_strongly_connected(topo)

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            unidirectional_ring(1)
        with pytest.raises(ValidationError):
            clique(1)
        with pytest.raises(ValidationError):
            torus(1, 5)
