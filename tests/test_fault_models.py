"""Unit tests for repro.faults: models, fault schedules, injection mechanics.

Covers the subsystem's contracts: deterministic seeded corruption, pickle
round-trips (the multiprocessing fan-out contract), identity preservation
when nothing changes, fire-list semantics, and the equivalence of a fault
run with no faults to a plain analyzed run.
"""

import pickle

import pytest

from repro.core import (
    Labeling,
    RandomRFairSchedule,
    RoundRobinSchedule,
    Simulator,
    SynchronousSchedule,
    compile_protocol,
)
from repro.core.schedule import ShiftedSchedule
from repro.exceptions import ValidationError
from repro.faults import (
    BurstFault,
    ComposedFault,
    ComposedFaultSchedule,
    NoFaults,
    OneShotFault,
    PeriodicFault,
    RandomCorruption,
    StuckAtFault,
    TargetedCorruption,
    WindowFault,
)
from repro.graphs import clique
from repro.stabilization import example1_protocol, stable_labeling_pair

from tests.helpers import copy_ring_protocol, or_clique_protocol, random_bit_labeling


@pytest.fixture
def ring3():
    protocol = copy_ring_protocol(3)
    return protocol, protocol.topology, protocol.label_space


class TestRandomCorruption:
    def test_deterministic_per_seed_and_step(self, ring3):
        _, topology, space = ring3
        values = (0, 0, 0)
        model = RandomCorruption(fraction=1.0, seed=5)
        once = model.apply(values, topology, space, step=7)
        again = model.apply(values, topology, space, step=7)
        assert once == again

    def test_different_steps_decorrelate(self, ring3):
        _, topology, space = ring3
        model = RandomCorruption(fraction=1.0, seed=5)
        values = (0,) * 3
        outcomes = {model.apply(values, topology, space, step=t) for t in range(64)}
        assert len(outcomes) > 1

    def test_zero_fraction_preserves_identity(self, ring3):
        _, topology, space = ring3
        values = (0, 1, 0)
        model = RandomCorruption(fraction=0.0, seed=1)
        assert model.apply(values, topology, space, step=0) is values

    def test_full_fraction_resamples_every_edge_from_space(self, ring3):
        _, topology, space = ring3
        model = RandomCorruption(fraction=1.0, seed=2)
        corrupted = model.apply((0, 1, 0), topology, space, step=3)
        assert len(corrupted) == topology.m
        assert all(label in space for label in corrupted)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValidationError):
            RandomCorruption(fraction=1.5)

    def test_pickle_round_trip_applies_identically(self, ring3):
        _, topology, space = ring3
        model = RandomCorruption(fraction=0.7, seed=9)
        clone = pickle.loads(pickle.dumps(model))
        values = (1, 0, 1)
        assert model.apply(values, topology, space, 4) == clone.apply(
            values, topology, space, 4
        )


class TestTargetedCorruption:
    def test_corrupts_exactly_the_listed_edges(self, ring3):
        _, topology, space = ring3
        target = topology.edges[1]
        model = TargetedCorruption([target], seed=3)
        values = (0, 0, 0)
        corrupted = model.apply(values, topology, space, step=0)
        position = topology.edge_position(target)
        for p in range(topology.m):
            if p != position:
                assert corrupted[p] == values[p]
        assert corrupted[position] in space

    def test_explicit_labels_written_verbatim(self, ring3):
        _, topology, space = ring3
        edges = topology.edges
        model = TargetedCorruption(edges, labels={edges[0]: 1, edges[2]: 1})
        corrupted = model.apply((0, 0, 0), topology, space, step=0)
        assert corrupted[topology.edge_position(edges[0])] == 1
        assert corrupted[topology.edge_position(edges[2])] == 1

    def test_label_outside_space_rejected(self, ring3):
        _, topology, space = ring3
        edge = topology.edges[0]
        model = TargetedCorruption([edge], labels={edge: "bogus"})
        with pytest.raises(ValidationError):
            model.apply((0, 0, 0), topology, space, step=0)

    def test_labels_for_unlisted_edges_rejected(self, ring3):
        _, topology, _ = ring3
        with pytest.raises(ValidationError):
            TargetedCorruption([topology.edges[0]], labels={topology.edges[1]: 0})

    def test_needs_edges(self):
        with pytest.raises(ValidationError):
            TargetedCorruption([])


class TestStuckAtFault:
    def test_pins_edges_at_label(self, ring3):
        _, topology, space = ring3
        edges = topology.edges[:2]
        model = StuckAtFault(edges, 1)
        corrupted = model.apply((0, 0, 0), topology, space, step=0)
        assert corrupted[topology.edge_position(edges[0])] == 1
        assert corrupted[topology.edge_position(edges[1])] == 1
        assert corrupted[2] == 0

    def test_identity_when_already_stuck(self, ring3):
        _, topology, space = ring3
        values = (1, 1, 0)
        model = StuckAtFault(topology.edges[:2], 1)
        assert model.apply(values, topology, space, step=0) is values

    def test_invalid_label_rejected(self, ring3):
        _, topology, space = ring3
        model = StuckAtFault(topology.edges[:1], "bogus")
        with pytest.raises(ValidationError):
            model.apply((0, 0, 0), topology, space, step=0)


class TestComposedFault:
    def test_applies_in_order(self, ring3):
        _, topology, space = ring3
        first = StuckAtFault(topology.edges[:1], 1)
        second = StuckAtFault(topology.edges[:1], 0)
        model = ComposedFault([first, second])
        assert model.apply((0, 0, 0), topology, space, 0)[0] == 0
        model = ComposedFault([second, first])
        assert model.apply((0, 0, 0), topology, space, 0)[0] == 1


class TestFaultSchedules:
    def test_no_faults_never_fires(self):
        assert NoFaults().fires_within(1000) == []
        assert NoFaults().last_fire_within(1000) is None

    def test_one_shot_respects_horizon(self):
        model = RandomCorruption()
        fault = OneShotFault(10, model)
        assert fault.fires_within(11) == [(10, model)]
        assert fault.fires_within(10) == []

    def test_burst_sorts_and_clips(self):
        model = RandomCorruption()
        fault = BurstFault([9, 3, 6], model)
        assert [t for t, _ in fault.fires_within(7)] == [3, 6]
        assert fault.last_fire_within(100) == 9

    def test_window_fires_every_step(self):
        model = StuckAtFault([(0, 1)], 0)
        fault = WindowFault(2, 5, model)
        assert [t for t, _ in fault.fires_within(100)] == [2, 3, 4]
        assert [t for t, _ in fault.fires_within(4)] == [2, 3]

    def test_periodic_with_and_without_stop(self):
        model = RandomCorruption()
        assert [t for t, _ in PeriodicFault(3, model).fires_within(10)] == [0, 3, 6, 9]
        bounded = PeriodicFault(3, model, start=1, stop=8)
        assert [t for t, _ in bounded.fires_within(100)] == [1, 4, 7]

    def test_composed_merges_in_time_order(self):
        a = RandomCorruption(seed=1)
        b = RandomCorruption(seed=2)
        fault = ComposedFaultSchedule([OneShotFault(5, a), BurstFault([2, 5], b)])
        assert fault.fires_within(10) == [(2, b), (5, a), (5, b)]

    def test_invalid_parameters_rejected(self):
        model = RandomCorruption()
        with pytest.raises(ValidationError):
            OneShotFault(-1, model)
        with pytest.raises(ValidationError):
            BurstFault([], model)
        with pytest.raises(ValidationError):
            WindowFault(3, 3, model)
        with pytest.raises(ValidationError):
            PeriodicFault(0, model)
        with pytest.raises(ValidationError):
            ComposedFaultSchedule([])

    def test_schedules_pickle(self):
        fault = ComposedFaultSchedule(
            [
                OneShotFault(3, RandomCorruption(seed=4)),
                WindowFault(5, 8, StuckAtFault([(0, 1)], 0)),
            ]
        )
        clone = pickle.loads(pickle.dumps(fault))
        assert [t for t, _ in clone.fires_within(10)] == [3, 5, 6, 7]


class TestRunWithFaults:
    def test_no_faults_matches_plain_run(self):
        protocol = or_clique_protocol(clique(4))
        simulator = Simulator(protocol, (0,) * 4)
        labeling = random_bit_labeling(protocol.topology, seed=3)
        schedule = SynchronousSchedule(4)
        plain = simulator.run(labeling, schedule, max_steps=50)
        injected = simulator.run_with_faults(
            labeling, schedule, NoFaults(), max_steps=50
        )
        assert injected.outcome == plain.outcome
        assert injected.recovery_rounds == plain.label_rounds
        assert injected.output_recovery_rounds == plain.output_rounds
        assert injected.steps_executed == plain.steps_executed
        assert injected.final == plain.final
        assert injected.faults_fired == 0
        assert injected.last_fault_time is None

    def test_fault_beyond_budget_never_fires(self):
        protocol = or_clique_protocol(clique(3))
        simulator = Simulator(protocol, (0,) * 3)
        labeling = random_bit_labeling(protocol.topology, seed=1)
        report = simulator.run_with_faults(
            labeling,
            SynchronousSchedule(3),
            OneShotFault(1_000, RandomCorruption(seed=0)),
            max_steps=30,
        )
        assert report.faults_fired == 0

    def test_fault_at_time_zero_corrupts_initial_configuration(self):
        # Copy-ring from a uniform labeling is stable; pinning one edge to 1
        # at t=0 turns it into the rotating non-stabilizing labeling.
        protocol = copy_ring_protocol(4)
        simulator = Simulator(protocol, (0,) * 4)
        uniform = Labeling.uniform(protocol.topology, 0)
        fault = OneShotFault(0, StuckAtFault([protocol.topology.edges[0]], 1))
        report = simulator.run_with_faults(
            uniform, SynchronousSchedule(4), fault, max_steps=50
        )
        assert report.outcome.value == "oscillating"
        assert not report.recovered

    def test_window_fault_holds_edges_through_the_window(self):
        # While the stuck-at window is open the or-clique keeps seeing a 1
        # and cannot reach the all-zero fixed point; after it closes the
        # protocol stabilizes (to all-one, seeded by the stuck edge).
        protocol = or_clique_protocol(clique(3))
        simulator = Simulator(protocol, (0,) * 3)
        zero = Labeling.uniform(protocol.topology, 0)
        fault = WindowFault(1, 6, StuckAtFault([protocol.topology.edges[0]], 1))
        report = simulator.run_with_faults(
            zero, SynchronousSchedule(3), fault, max_steps=40
        )
        assert report.faults_fired == 5
        assert report.last_fault_time == 5
        assert report.recovered
        assert set(report.final.labeling.values) == {1}

    def test_recovery_rounds_count_from_last_fault(self):
        protocol = or_clique_protocol(clique(4))
        simulator = Simulator(protocol, (0,) * 4)
        report = simulator.run_with_faults(
            Labeling.uniform(protocol.topology, 1),
            SynchronousSchedule(4),
            OneShotFault(7, TargetedCorruption(protocol.topology.edges[:2], seed=2)),
            max_steps=60,
        )
        assert report.recovered
        # the tail re-stabilizes within a couple of rounds of the fault
        assert report.recovery_rounds <= 2
        assert report.steps_executed >= 7

    def test_rejects_unsorted_fire_lists(self):
        class Broken:
            def fires_within(self, horizon):
                return [(5, RandomCorruption()), (2, RandomCorruption())]

        protocol = or_clique_protocol(clique(3))
        simulator = Simulator(protocol, (0,) * 3)
        with pytest.raises(ValidationError):
            simulator.run_with_faults(
                random_bit_labeling(protocol.topology, seed=0),
                SynchronousSchedule(3),
                Broken(),
                max_steps=30,
            )


class TestShiftedSchedule:
    def test_active_is_shifted_view(self):
        base = RoundRobinSchedule(5)
        shifted = base.shifted(3)
        for t in range(20):
            assert shifted.active(t) == base.active(t + 3)

    def test_zero_shift_returns_self(self):
        base = SynchronousSchedule(4)
        assert base.shifted(0) is base

    def test_periodicity_survives_shifting(self):
        base = RoundRobinSchedule(5)
        shifted = base.shifted(2)
        assert shifted.period == 5
        assert shifted.preperiod == 0

    def test_preperiod_shrinks_with_shift(self):
        from repro.core import LassoSchedule

        base = LassoSchedule(3, prefix=[{0}, {1}, {2}], loop=[{0, 1, 2}])
        assert base.shifted(2).preperiod == 1
        assert base.shifted(5).preperiod == 0
        assert base.shifted(2).period == 1

    def test_nested_shifts_flatten(self):
        base = RoundRobinSchedule(4)
        twice = base.shifted(2).shifted(3)
        assert isinstance(twice, ShiftedSchedule)
        assert twice.base is base
        assert twice.offset == 5

    def test_negative_shift_rejected(self):
        with pytest.raises(ValidationError):
            ShiftedSchedule(RoundRobinSchedule(3), -1)

    def test_shifted_random_schedule_memoizes_consistently(self):
        base = RandomRFairSchedule(4, r=3, seed=11)
        shifted = base.shifted(7)
        realized = [shifted.active(t) for t in range(10)]
        assert realized == [base.active(t + 7) for t in range(10)]


class TestIsFixedPoint:
    def test_stable_labelings_are_fixed_points(self):
        protocol = example1_protocol(4)
        compiled = compile_protocol(protocol)
        zero, one = stable_labeling_pair(4)
        assert compiled.is_fixed_point(zero.values, (0,) * 4)
        assert compiled.is_fixed_point(one.values, (0,) * 4)

    def test_token_labeling_is_not(self):
        from repro.stabilization import one_token_labeling

        protocol = example1_protocol(4)
        compiled = compile_protocol(protocol)
        assert not compiled.is_fixed_point(one_token_labeling(4).values, (0,) * 4)

    def test_agrees_with_object_level_checker(self):
        from repro.stabilization import is_stable_labeling

        protocol = or_clique_protocol(clique(3))
        compiled = compile_protocol(protocol)
        inputs = (0,) * 3
        for seed in range(8):
            labeling = random_bit_labeling(protocol.topology, seed=seed)
            assert compiled.is_fixed_point(labeling.values, inputs) == (
                is_stable_labeling(protocol, inputs, labeling)
            )
