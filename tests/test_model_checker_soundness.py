"""Soundness checks for the model checker itself.

The library's exhaustive verdicts are only as good as the checker, so we
test the checker against itself and against first principles:

* **broadcast-space reduction soundness**: for protocols whose reactions
  broadcast one label to all neighbors, restricting initial labelings to
  broadcast labelings must not change the verdict (hypothesis-tested on
  random broadcast protocols over K_3);
* **monotonicity in r**: if a protocol is label r-stabilizing it is also
  label r'-stabilizing for every r' < r (more schedules are allowed at
  larger r);
* **witness validity**: every negative verdict's witness must replay as a
  genuine non-converging run under an r-fair schedule;
* **Theorem 3.1 generality**: the OR-broadcast protocol has two stable
  labelings on *any* topology, so it must fail (n-1)-stabilization on
  rings, tori, hypercubes and stars alike.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RunOutcome,
    Simulator,
    StatelessProtocol,
    UniformReaction,
    binary,
    default_inputs,
    minimal_fairness,
)
from repro.graphs import bidirectional_ring, clique, hypercube, star, torus
from repro.stabilization import (
    broadcast_labelings,
    decide_label_r_stabilizing,
    stable_labelings,
)

from tests.helpers import or_clique_protocol


def random_broadcast_protocol(n: int, seed: int) -> StatelessProtocol:
    """A random protocol on K_n where each node broadcasts one bit computed
    from the multiset of incoming bits (a random monotone-free table)."""
    rng = random.Random(seed)
    topology = clique(n)

    def make_reaction(i):
        table = {k: rng.randrange(2) for k in range(n)}  # keyed by #ones seen

        def react(incoming, _x):
            ones = sum(incoming.values())
            bit = table[ones]
            return bit, bit

        return UniformReaction(topology.out_edges(i), react)

    return StatelessProtocol(
        topology, binary(), [make_reaction(i) for i in range(n)], name=f"rand({seed})"
    )


class TestBroadcastReductionSoundness:
    @given(
        st.integers(min_value=0, max_value=150),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_full_and_broadcast_space_verdicts_agree(self, seed, r):
        protocol = random_broadcast_protocol(3, seed)
        inputs = default_inputs(protocol)
        full = decide_label_r_stabilizing(protocol, inputs, r)
        restricted = decide_label_r_stabilizing(
            protocol,
            inputs,
            r,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert full.stabilizing == restricted.stabilizing


class TestMonotonicityInR:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_stabilizing_at_r_implies_stabilizing_below(self, seed):
        protocol = random_broadcast_protocol(3, seed)
        inputs = default_inputs(protocol)
        verdicts = {
            r: decide_label_r_stabilizing(
                protocol,
                inputs,
                r,
                initial_labelings=broadcast_labelings(
                    protocol.topology, protocol.label_space
                ),
            ).stabilizing
            for r in (1, 2, 3)
        }
        # non-stabilizing at small r implies non-stabilizing at larger r
        if not verdicts[1]:
            assert not verdicts[2] and not verdicts[3]
        if not verdicts[2]:
            assert not verdicts[3]


class TestWitnessValidity:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_every_negative_verdict_replays(self, seed):
        protocol = random_broadcast_protocol(3, seed)
        inputs = default_inputs(protocol)
        verdict = decide_label_r_stabilizing(
            protocol,
            inputs,
            2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        if verdict.stabilizing:
            return
        witness = verdict.witness
        schedule = witness.to_schedule(protocol.n)
        assert minimal_fairness(schedule, 300) <= 2
        report = Simulator(protocol, inputs).run(
            witness.initial_labeling, schedule, max_steps=3000
        )
        # labels must keep changing forever (oscillating, or output-stable
        # with a non-trivial label cycle)
        assert report.outcome in (RunOutcome.OSCILLATING, RunOutcome.OUTPUT_STABLE)
        assert not report.label_stable


def or_broadcast_protocol(topology):
    """The Example-1 reaction on an arbitrary topology."""

    def bit(incoming, _x):
        value = 0 if all(v == 0 for v in incoming.values()) else 1
        return value, value

    reactions = [
        UniformReaction(topology.out_edges(i), bit) for i in range(topology.n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name=f"or({topology.name})")


class TestTheorem31AcrossTopologies:
    """The impossibility is topology-independent; future-work item 3."""

    @pytest.mark.parametrize(
        "topology",
        [
            bidirectional_ring(4),
            torus(2, 2),
            hypercube(2),
            star(4),
        ],
        ids=lambda t: t.name,
    )
    def test_two_stable_labelings_break_n_minus_1_everywhere(self, topology):
        protocol = or_broadcast_protocol(topology)
        inputs = default_inputs(protocol)
        stables = stable_labelings(
            protocol,
            inputs,
            broadcast_labelings(protocol.topology, protocol.label_space),
        )
        assert len(stables) >= 2
        verdict = decide_label_r_stabilizing(
            protocol,
            inputs,
            topology.n - 1,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing

    def test_clique_case_matches_example1(self):
        protocol = or_clique_protocol(clique(3))
        inputs = default_inputs(protocol)
        verdict = decide_label_r_stabilizing(protocol, inputs, 2)
        assert not verdict.stabilizing
