"""A4 — states-graph construction: interned exploration core vs the seed BFS.

Acceptance gate for the unified exploration core
(:mod:`repro.stabilization.exploration`): constructing the Theorem 3.1
states-graph of the Example-1 clique must deliver at least 2x the states/s
of the seed ``StatesGraph`` (re-enumerated ``combinations(...)`` per state,
one compiled transition per (state, activation set), full-tuple state keys —
reproduced verbatim below as the baseline).

The second kernel demonstrates the new capacity headroom: the K_6 / r=4
graph (27,634 states, ~819k edges) took ~14s to materialize with the seed
implementation — far past any interactive or CI time budget — and completes
in ~1.4s on the interned core, which makes a previously untouchable
clique/r configuration a routine exhaustive check.
"""

from collections import deque
from itertools import combinations

from _runner import median_time

from repro.analysis import print_table
from repro.core import default_inputs
from repro.exceptions import SearchBudgetExceeded
from repro.stabilization import (
    StatesGraph,
    broadcast_labelings,
    example1_protocol,
)
from repro.core.compiled import compile_protocol

GATE_N, GATE_R = 5, 3
CAPACITY_N, CAPACITY_R = 6, 4
CAPACITY_STATES = 27_634
REPEATS = 3
MIN_SPEEDUP = 2.0


# -- the pre-core implementation, kept as the baseline ------------------------


def _seed_valid_activation_sets(countdown, n):
    forced = frozenset(i for i in range(n) if countdown[i] == 1)
    optional = [i for i in range(n) if i not in forced]
    sets = []
    for size in range(len(optional) + 1):
        for extra in combinations(optional, size):
            t = forced | frozenset(extra)
            if t:
                sets.append(t)
    return sets


class _SeedStatesGraph:
    """The seed ``StatesGraph`` BFS, verbatim (modulo cosmetic renames)."""

    def __init__(self, protocol, inputs, r, initial_labelings, budget=400_000):
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.r = r
        self._compiled = compile_protocol(protocol)
        n = protocol.n
        initial_countdown = (r,) * n

        self.index = {}
        self.states = []
        self.successors = []
        self.parent = []
        self.initial_indices = []

        queue = deque()
        for labeling in initial_labelings:
            state = (labeling.values, initial_countdown)
            if state not in self.index:
                self._add_state(state, None)
                self.initial_indices.append(self.index[state])
                queue.append(self.index[state])

        while queue:
            k = queue.popleft()
            values, countdown = self.states[k]
            for t in _seed_valid_activation_sets(countdown, n):
                next_state = self._apply(values, countdown, t)
                if next_state not in self.index:
                    if len(self.states) >= budget:
                        raise SearchBudgetExceeded(
                            f"states-graph exceeded budget of {budget} states"
                        )
                    self._add_state(next_state, (k, t))
                    queue.append(self.index[next_state])
                self.successors[k].append((self.index[next_state], t))

    def _add_state(self, state, parent):
        self.index[state] = len(self.states)
        self.states.append(state)
        self.successors.append([])
        self.parent.append(parent)

    def _apply(self, values, countdown, active):
        new_values, _ = self._compiled.step_values(values, None, active, self.inputs)
        new_countdown = tuple(
            self.r if i in active else countdown[i] - 1
            for i in range(self.protocol.n)
        )
        return (new_values, new_countdown)

    def __len__(self):
        return len(self.states)


# -- measurement -------------------------------------------------------------


def test_a04_states_graph_construction(benchmark):
    protocol = example1_protocol(GATE_N)
    inputs = default_inputs(protocol)
    initials = list(broadcast_labelings(protocol.topology, protocol.label_space))

    def seed_kernel():
        return _SeedStatesGraph(protocol, inputs, GATE_R, initials)

    def core_kernel():
        return StatesGraph(protocol, inputs, GATE_R, initials)

    # The two constructions must agree edge-for-edge (state indices are BFS
    # discovery order in both, so successor lists are directly comparable).
    seed_graph = seed_kernel()
    core_graph = core_kernel()
    assert len(core_graph) == len(seed_graph)
    assert core_graph.successors == seed_graph.successors
    assert core_graph.parent == seed_graph.parent
    assert core_graph.initial_indices == seed_graph.initial_indices

    seed_median, seed_graph = median_time(seed_kernel, REPEATS)
    core_median, core_graph = median_time(core_kernel, REPEATS)
    states = len(core_graph)
    seed_rate = states / seed_median
    core_rate = states / core_median
    speedup = core_rate / seed_rate

    print_table(
        f"A4: states-graph construction — Example-1 K_{GATE_N}, r={GATE_R}, "
        f"{states} states (median of {REPEATS})",
        ["construction", "median s", "states/s", "speedup"],
        [
            ["seed BFS", f"{seed_median:.4f}", f"{seed_rate:,.0f}", "1.0x"],
            [
                "interned exploration core",
                f"{core_median:.4f}",
                f"{core_rate:,.0f}",
                f"{speedup:.1f}x",
            ],
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"exploration core only {speedup:.2f}x the seed states-graph "
        f"({core_rate:,.0f} vs {seed_rate:,.0f} states/s)"
    )
    stats = core_graph.stats()
    benchmark.extra["states"] = stats.states
    benchmark.extra["edges"] = stats.edges
    benchmark.extra["transition_cache_hits"] = stats.transition_cache_hits
    benchmark.extra["transition_cache_misses"] = stats.transition_cache_misses
    benchmark.extra["peak_frontier"] = stats.peak_frontier
    benchmark(core_kernel)


def test_a04_capacity_headroom(benchmark):
    """K_6 / r=4 — a configuration the seed BFS needed ~14s for — completes."""
    protocol = example1_protocol(CAPACITY_N)
    inputs = default_inputs(protocol)
    initials = list(broadcast_labelings(protocol.topology, protocol.label_space))

    def capacity_kernel():
        return StatesGraph(protocol, inputs, CAPACITY_R, initials)

    graph = capacity_kernel()
    assert len(graph) == CAPACITY_STATES
    edges = sum(len(succ) for succ in graph.successors)

    median, graph = median_time(capacity_kernel, 1)
    print_table(
        f"A4: capacity — Example-1 K_{CAPACITY_N}, r={CAPACITY_R} "
        f"(seed BFS: ~14s on the same hardware class)",
        ["states", "edges", "distinct labelings", "s / construction", "states/s"],
        [
            [
                f"{len(graph):,}",
                f"{edges:,}",
                f"{graph.num_labelings}",
                f"{median:.2f}",
                f"{len(graph) / median:,.0f}",
            ]
        ],
    )
    stats = graph.stats()
    benchmark.extra["states"] = stats.states
    benchmark.extra["edges"] = stats.edges
    benchmark.extra["transition_cache_hits"] = stats.transition_cache_hits
    benchmark.extra["transition_cache_misses"] = stats.transition_cache_misses
    benchmark.extra["peak_frontier"] = stats.peak_frontier
    benchmark(capacity_kernel)
