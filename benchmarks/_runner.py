"""Shared benchmark harness: run bench entry points, write machine-readable
results.

Each ``benchmarks/bench_*.py`` module exposes pytest-style entry points
``test_*(benchmark)``.  This runner drives them outside pytest with a minimal
stand-in for the pytest-benchmark fixture, records the kernel's median wall
time, and writes ``BENCH_<name>.json`` next to this file — so the performance
trajectory of the repository is machine-readable from this PR on.

Each record keeps that trajectory explicitly: the top-level ``entries`` hold
the latest run (what ``check_regression.py`` gates on), and every earlier
run is appended to a ``history`` list, newest last, so re-recording a
baseline never discards the measurements it replaces.

A module may set ``BENCH_STEPS`` (engine steps executed per kernel call) to
get a derived ``steps_per_s`` figure in its JSON.  A bench may attach
arbitrary numeric facts to its record via ``benchmark.extra["field"] = v``
(merged into the entry), and declare hard acceptance gates via a module
level ``BENCH_GATES = {entry_name: {"max_kernel_median_s": ..., "min":
{field: floor}}}`` — gates are copied into the record so
``check_regression.py`` enforces them on every run, not just this one.

Usage:
    python benchmarks/_runner.py                  # run every bench
    python benchmarks/_runner.py a02 e10          # substring selection
    python benchmarks/_runner.py --repeats 3 a02
"""

from __future__ import annotations

import argparse
import importlib.util
import inspect
import json
import statistics
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

# Make `repro` importable without requiring PYTHONPATH=src.
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)


def median_time(fn, repeats: int = 5):
    """Median wall time of ``repeats`` calls, plus the last result.

    Shared by gated benches (a02, a03) so their timing methodology cannot
    drift apart.
    """
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


class TimingBenchmark:
    """Minimal stand-in for pytest-benchmark's ``benchmark`` fixture.

    Calling it runs ``fn`` ``repeats`` times, records each wall time, and
    returns the last result (pytest-benchmark returns the kernel's result,
    which several benches assert on).
    """

    def __init__(self, repeats: int = 5):
        self.repeats = repeats
        self.times: list[float] = []
        #: Extra numeric facts the bench wants in its JSON entry
        #: (e.g. ``quotient_reduction_factor``); merged by the runner.
        self.extra: dict = {}

    def __call__(self, fn, *args, **kwargs):
        result = None
        for _ in range(self.repeats):
            start = time.perf_counter()
            result = fn(*args, **kwargs)
            self.times.append(time.perf_counter() - start)
        return result

    @property
    def median(self) -> float | None:
        return statistics.median(self.times) if self.times else None


def load_bench_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def bench_entry_points(module):
    """``test_*`` functions taking a ``benchmark`` parameter, in file order."""
    entries = []
    for name in dir(module):
        if not name.startswith("test_"):
            continue
        fn = getattr(module, name)
        if not callable(fn):
            continue
        try:
            parameters = inspect.signature(fn).parameters
        except (TypeError, ValueError):
            continue
        if "benchmark" in parameters:
            entries.append((name, fn))
    entries.sort(key=lambda item: item[1].__code__.co_firstlineno)
    return entries


def run_bench_file(path: Path, repeats: int) -> dict:
    module = load_bench_module(path)
    steps_per_call = getattr(module, "BENCH_STEPS", None)
    gates = getattr(module, "BENCH_GATES", None)
    entries = {}
    for name, fn in bench_entry_points(module):
        fixture = TimingBenchmark(repeats=repeats)
        start = time.perf_counter()
        fn(fixture)
        total = time.perf_counter() - start
        entry = {
            "kernel_median_s": fixture.median,
            "kernel_runs": len(fixture.times),
            "total_s": total,
        }
        if steps_per_call and fixture.median:
            entry["steps_per_s"] = steps_per_call / fixture.median
        entry.update(fixture.extra)
        entries[name] = entry
    record = {
        "bench": path.stem,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "entries": entries,
    }
    if gates:
        record["gates"] = gates
    return record


#: Oldest history snapshots are dropped past this many (newest kept).
HISTORY_LIMIT = 50


def merge_history(out_path: Path, record: dict) -> dict:
    """Fold the previous record into ``record["history"]``, newest last.

    The committed file's own ``history`` is carried over and its top-level
    run is appended as one more snapshot (skipped when identical to the last
    snapshot, so migrated records do not duplicate their seed entry).
    """
    history: list = []
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            previous = None
        if isinstance(previous, dict) and previous.get("entries"):
            history = [
                item
                for item in previous.get("history", [])
                if isinstance(item, dict)
            ]
            snapshot = {
                key: previous[key]
                for key in ("recorded_at", "entries")
                if key in previous
            }
            if not history or history[-1].get("entries") != snapshot["entries"]:
                history.append(snapshot)
    record["history"] = history[-HISTORY_LIMIT:]
    return record


def select_bench_files(patterns: list[str]) -> list[Path]:
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if not patterns:
        return files
    selected = [
        path for path in files if any(pattern in path.stem for pattern in patterns)
    ]
    missing = [
        pattern
        for pattern in patterns
        if not any(pattern in path.stem for path in files)
    ]
    if missing:
        raise SystemExit(f"no bench file matches: {', '.join(missing)}")
    return selected


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("patterns", nargs="*", help="substring filters on bench names")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    for path in select_bench_files(args.patterns):
        print(f"== {path.stem} ==", flush=True)
        record = run_bench_file(path, args.repeats)
        out_path = BENCH_DIR / f"BENCH_{path.stem}.json"
        record = merge_history(out_path, record)
        out_path.write_text(json.dumps(record, indent=2) + "\n")
        for name, entry in record["entries"].items():
            line = (
                f"  {name}: kernel median {entry['kernel_median_s']:.6f}s"
                f" over {entry['kernel_runs']} runs"
                f" (total {entry['total_s']:.2f}s)"
            )
            if "steps_per_s" in entry:
                line += f", {entry['steps_per_s']:,.0f} steps/s"
            print(line, flush=True)
        print(f"  -> {out_path.name}", flush=True)


if __name__ == "__main__":
    main()
