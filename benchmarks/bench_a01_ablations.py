"""A1 — Ablations of the reproduction's design choices.

DESIGN.md documents two places where the paper's construction sketch left
freedom (or was broken) and we made a concrete choice; this bench knocks
each choice out and shows the measured consequence:

1. **D-counter calibration (SIGMA, KAPPA).** The paper's Claim 5.6 leaves
   two sign conventions implicit.  Exactly the two consistent combinations
   synchronize (they pick which interleaved z-sequence the ring counts on);
   the two mismatched ones never do.

2. **EQ-gadget orientation.** Re-enabling the paper's special edge out of
   the all-zeros vertex creates a synchronous 2-cycle that breaks the
   "x != y => stabilizing" direction of Theorem B.4 — our dropped-rule
   orientation restores it (both verdicts by exact model checking).
"""

import random

from repro.analysis import print_table
from repro.core import (
    Labeling,
    Simulator,
    SynchronousSchedule,
    UniformReaction,
    default_inputs,
)
from repro.core.labels import ExplicitLabelSpace, IntegerRange, ProductSpace
from repro.core.protocol import StatelessProtocol
from repro.graphs import bidirectional_ring
from repro.hardness import eq_gadget_protocol
from repro.power import CounterFields, RingCounterSpec
from repro.stabilization import broadcast_labelings, decide_label_r_stabilizing


def _counter_protocol_with(spec: RingCounterSpec) -> StatelessProtocol:
    n = spec.n
    topology = bidirectional_ring(n)
    label_space = ProductSpace(
        (
            ExplicitLabelSpace((0, 1)),
            ExplicitLabelSpace((0, 1)),
            IntegerRange(spec.modulus),
            IntegerRange(spec.modulus),
        )
    )

    def make_reaction(j):
        pred_edge = ((j - 1) % n, j)
        succ_edge = ((j + 1) % n, j)

        def react(incoming, _x):
            pred = CounterFields(*incoming[pred_edge])
            succ = CounterFields(*incoming[succ_edge])
            fields = spec.update(j, pred, succ)
            return tuple(fields), spec.counter_value(j, pred, fields)

        return UniformReaction(topology.out_edges(j), react)

    return StatelessProtocol(
        topology, label_space, [make_reaction(j) for j in range(n)]
    )


def _synchronizes(spec: RingCounterSpec, seed: int) -> bool:
    protocol = _counter_protocol_with(spec)
    rng = random.Random(seed)
    labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
    simulator = Simulator(protocol, (0,) * spec.n)
    trace = simulator.run_trace(
        labeling, SynchronousSchedule(spec.n), 4 * spec.n + 2 * spec.modulus + 10
    )
    rows = [config.outputs for config in trace[1:]]
    tail = rows[-(2 * spec.modulus):]
    for current, nxt in zip(tail, tail[1:], strict=False):
        if len(set(current)) != 1 or nxt[0] != (current[0] + 1) % spec.modulus:
            return False
    return True


def _calibration_rows():
    rows = []
    for sigma in (0, 1):
        for kappa in (0, 1):
            spec = RingCounterSpec(5, 8, sigma=sigma, kappa=kappa)
            ok = all(_synchronizes(spec, seed) for seed in range(3))
            rows.append(
                [sigma, kappa, ok, "consistent" if sigma != kappa else "mismatched"]
            )
            assert ok == (sigma != kappa)
    return rows


def _orientation_rows():
    n = 5
    # The square snake {4,5,7,6} in Q_3: the origin is off-snake but has
    # both an on-snake neighbor (4) and an off-snake neighbor (1) — the
    # configuration where the special-edge rule and a forced pull can fire
    # together.
    snake = [4, 5, 7, 6]
    x = tuple(0 for _ in snake)
    y = tuple(1 if k == 0 else 0 for k in range(len(snake)))  # x != y
    rows = []
    for special_edge in (False, True):
        protocol = eq_gadget_protocol(n, x, y, snake, special_edge=special_edge)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            1,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        rows.append(
            [
                "paper special edge" if special_edge else "ours (dropped)",
                "x != y",
                verdict.stabilizing,
                "correct" if verdict.stabilizing else "dichotomy broken",
            ]
        )
    assert rows[0][2] is True
    assert rows[1][2] is False
    return rows


def test_a01_ablations(benchmark):
    print_table(
        "A1a: D-counter calibration ablation — exactly the two consistent "
        "(sigma, kappa) choices synchronize",
        ["sigma", "kappa", "synchronizes", "note"],
        _calibration_rows(),
    )
    print_table(
        "A1b: EQ-gadget orientation ablation — the paper's special edge "
        "breaks the x != y direction under simultaneous activation",
        ["orientation", "inputs", "1-stabilizing", "note"],
        _orientation_rows(),
    )
    spec = RingCounterSpec(5, 8)
    benchmark(lambda: _synchronizes(spec, 0))
