"""E1 — Theorem 3.1 + Example 1 (tightness of the impossibility result).

Paper claims:
* two stable labelings => not label (n-1)-stabilizing (Theorem 3.1);
* Example 1 is label r-stabilizing for every r < n-1 (tightness);
* the oscillation uses an exactly (n-1)-fair pair-rotation schedule.

The bench regenerates the verdict table for n = 3..5 and times the exact
model check on K_4.
"""

from repro.analysis import print_table
from repro.core import RunOutcome, Simulator, default_inputs, minimal_fairness
from repro.stabilization import (
    broadcast_labelings,
    decide_label_r_stabilizing,
    example1_protocol,
    one_token_labeling,
    oscillating_schedule,
    stable_labelings,
)


def _experiment_rows():
    rows = []
    for n in (3, 4, 5):
        protocol = example1_protocol(n)
        inputs = default_inputs(protocol)
        stables = len(
            stable_labelings(
                protocol,
                inputs,
                broadcast_labelings(protocol.topology, protocol.label_space),
            )
        )
        bad = decide_label_r_stabilizing(
            protocol,
            inputs,
            n - 1,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        good = decide_label_r_stabilizing(
            protocol,
            inputs,
            max(n - 2, 1),
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        schedule = oscillating_schedule(n)
        run = Simulator(protocol, inputs).run(
            one_token_labeling(n), schedule, max_steps=2000
        )
        rows.append(
            [
                n,
                stables,
                f"not-stab={not bad.stabilizing}",
                f"stab={good.stabilizing}",
                minimal_fairness(schedule, 50 * n),
                run.outcome.value,
            ]
        )
        assert stables == 2
        assert not bad.stabilizing and good.stabilizing
        assert run.outcome is RunOutcome.OSCILLATING
    return rows


def test_e01_impossibility(benchmark):
    rows = _experiment_rows()
    print_table(
        "E1: Theorem 3.1 / Example 1 — paper: 2 stable labelings, "
        "not (n-1)-stab, (n-2)-stab",
        ["n", "stable labelings", "r=n-1 verdict", "r=n-2 verdict",
         "schedule fairness", "run outcome"],
        rows,
    )

    protocol = example1_protocol(4)
    inputs = default_inputs(protocol)

    def kernel():
        return decide_label_r_stabilizing(
            protocol,
            inputs,
            3,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        ).stabilizing

    assert benchmark(kernel) is False
