"""E14 — Theorem 6.2 + Corollaries 6.3/6.4: fooling-set label lower bounds.

Machine-verifies the fooling sets for equality (linear bound) and majority
(logarithmic bound) on the bidirectional ring, and reports them against the
paper's constants and the Proposition 2.3 upper bound (n+1).
"""

from repro.analysis import print_table
from repro.graphs import bidirectional_ring
from repro.lowerbounds import (
    equality_bound,
    equality_fooling_set,
    equality_function,
    majority_bound,
    majority_fooling_set,
    majority_function,
    paper_equality_bound,
    paper_majority_bound,
    ring_bound,
    verify_fooling_set,
)
from repro.power.generic_protocol import label_complexity


def _experiment_rows():
    rows = []
    for n in (8, 12, 16, 20, 32):
        topology = bidirectional_ring(n)
        eq_set = equality_fooling_set(n)
        assert verify_fooling_set(equality_function, eq_set)
        eq = ring_bound(topology, n // 2, eq_set)
        maj_set = majority_fooling_set(n)
        assert verify_fooling_set(majority_function, maj_set)
        maj = ring_bound(topology, n // 2, maj_set)
        rows.append(
            [
                n,
                eq_set.size,
                f"{eq:.2f}",
                f"{paper_equality_bound(n):.2f}",
                f"{maj:.2f}",
                f"{paper_majority_bound(n):.2f}",
                label_complexity(n),
            ]
        )
        assert eq == equality_bound(n)
        assert maj == majority_bound(n)
        assert eq < label_complexity(n)
    return rows


def test_e14_fooling_bounds(benchmark):
    rows = _experiment_rows()
    print_table(
        "E14: Corollaries 6.3/6.4 — equality needs linear labels, majority "
        "logarithmic (verified sets; paper constants alongside — see "
        "EXPERIMENTS.md for the cut-condition adjustment)",
        ["n", "|S| (EQ)", "EQ bound", "paper (n-2)/8", "MAJ bound",
         "paper log(n/2)/4", "upper bound n+1"],
        rows,
    )

    def kernel():
        fooling = equality_fooling_set(16)
        assert verify_fooling_set(equality_function, fooling)
        return ring_bound(bidirectional_ring(16), 8, fooling)

    benchmark(kernel)
