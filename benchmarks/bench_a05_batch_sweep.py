"""A5 — batch sweep throughput: the vectorized backend vs the serial sweep.

Acceptance gate for ``repro.core.batch``: on a 64-node unidirectional ring
with a population of 1024 random initial labelings, ``run_sweep`` with
``executor="batch"`` must deliver at least **10x** the configurations/s of
the serial compiled sweep (``executor="serial"``), with the two reports
equal case for case.

Workload: every node forwards its incoming bit XORed with its private input;
the input vector has odd parity, so a stable labeling would need the labels
around the ring to XOR to zero *and* to the input parity at once — no stable
labeling exists, every case provably runs the full step budget, and both
executors do an identical, fixed number of global transitions per kernel
call.  The shared seeded random 4-fair schedule memoizes its realized steps,
so serial and batch runs see byte-identical activation sequences.
"""

from _runner import median_time

from repro.analysis import SweepCase, run_sweep
from repro.analysis.tables import print_table
from repro.core import (
    Labeling,
    RandomRFairSchedule,
    StatelessProtocol,
    UniformReaction,
    binary,
)
from repro.core.convergence import RunOutcome
from repro.graphs import unidirectional_ring

N = 64
CONFIGURATIONS = 1024
STEPS = 100
REPEATS = 3
MIN_SPEEDUP = 10.0

#: Global transitions per timed kernel call (consumed by benchmarks/_runner).
BENCH_STEPS = CONFIGURATIONS * STEPS


def _xor_forward(incoming, x):
    (value,) = incoming.values()
    return value ^ x, value


def _xor_ring_protocol(n: int) -> StatelessProtocol:
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _xor_forward) for i in range(n)
    ]
    return StatelessProtocol(
        topology, binary(), reactions, name=f"xor-ring({n})"
    )


def _population(protocol, count):
    import random

    rng = random.Random(0)
    topology = protocol.topology
    # Odd input parity: no stable labeling exists, every case runs the
    # full budget (see the module docstring).
    inputs = (1,) + (0,) * (topology.n - 1)
    return [
        SweepCase(
            inputs,
            Labeling(
                topology, tuple(rng.randrange(2) for _ in range(topology.m))
            ),
            tag=k,
        )
        for k in range(count)
    ]


def test_a05_batch_sweep_speedup(benchmark):
    protocol = _xor_ring_protocol(N)
    cases = _population(protocol, CONFIGURATIONS)
    schedule = RandomRFairSchedule(N, r=4, seed=2, p=0.9)

    def factory(index, case):
        return schedule

    def serial_kernel():
        return run_sweep(protocol, cases, factory, max_steps=STEPS)

    def batch_kernel():
        return run_sweep(
            protocol, cases, factory, max_steps=STEPS, executor="batch"
        )

    # Equivalence and workload sanity: equal reports, full budget everywhere.
    serial_report = serial_kernel()
    batch_report = batch_kernel()
    assert serial_report == batch_report
    assert all(r.outcome is RunOutcome.TIMEOUT for r in serial_report.results)
    assert all(r.steps_executed == STEPS for r in serial_report.results)

    # Re-measure up to three times before failing so one noisy burst cannot
    # flip the gate (same policy as the a03 overhead gate).
    for _attempt in range(3):
        serial_median, _ = median_time(serial_kernel, REPEATS)
        batch_median, _ = median_time(batch_kernel, REPEATS)
        speedup = serial_median / batch_median
        if speedup >= MIN_SPEEDUP:
            break
    serial_rate = CONFIGURATIONS / serial_median
    batch_rate = CONFIGURATIONS / batch_median

    print_table(
        f"A5: batch sweep throughput — {N}-node ring, {CONFIGURATIONS}"
        f" configurations x {STEPS} steps, random 4-fair"
        f" (median of {REPEATS})",
        ["executor", "median s / sweep", "configurations/s", "speedup"],
        [
            [
                "serial compiled sweep",
                f"{serial_median:.4f}",
                f"{serial_rate:,.0f}",
                "1.0x",
            ],
            [
                "batch (numpy lockstep)",
                f"{batch_median:.4f}",
                f"{batch_rate:,.0f}",
                f"{speedup:.1f}x",
            ],
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batch executor only {speedup:.2f}x the serial sweep "
        f"({batch_rate:,.0f} vs {serial_rate:,.0f} configurations/s)"
    )
    benchmark(batch_kernel)
