"""A5 — batch sweep throughput: the vectorized backend vs the serial sweep.

Acceptance gate for ``repro.core.batch`` (tightened by the packed-code fused
kernels): on a 64-node unidirectional ring with a population of 10^5 random
initial labelings, ``run_sweep`` under ``ExecutionPolicy(executor="batch")``
must deliver

* at least **10x** the configurations/s of the serial compiled sweep
  (measured on a 2048-case subset — the serial engine would need tens of
  minutes for the full population), reports equal case for case, and
* at least **3x** the configurations/s of the committed PR-4 numpy record
  on this same case (7,089.5 configurations/s), i.e. the packed + fused
  kernels must beat the plain int64 lockstep backend by 3x outright.

When numba is importable the compiled route (``kernel="numba"``) is benched
as a separate table row; it must agree with the numpy route bit for bit.

Workload: every node forwards its incoming bit XORed with its private input;
the input vector has odd parity, so a stable labeling would need the labels
around the ring to XOR to zero *and* to the input parity at once — no stable
labeling exists, every case provably runs the full step budget, and both
executors do an identical, fixed number of global transitions per kernel
call.  The shared seeded random 4-fair schedule memoizes its realized steps,
so serial and batch runs see byte-identical activation sequences.
"""

from _runner import median_time

from repro import ExecutionPolicy
from repro.analysis import SweepCase, run_sweep
from repro.analysis.tables import print_table
from repro.core import (
    Labeling,
    RandomRFairSchedule,
    StatelessProtocol,
    UniformReaction,
    binary,
)
from repro.core.batch_kernels import HAVE_NUMBA
from repro.core.convergence import RunOutcome
from repro.graphs import unidirectional_ring

N = 64
CONFIGURATIONS = 100_000
#: Serial subset: enough for a stable rate and the equivalence check without
#: multi-minute serial runs.
SERIAL_CONFIGURATIONS = 2_048
STEPS = 100
REPEATS = 3
BATCH = ExecutionPolicy(executor="batch")
NUMBA = ExecutionPolicy(executor="batch", kernel="numba")
MIN_SPEEDUP = 10.0
#: The committed PR-4 numpy lockstep record on this exact case
#: (BENCH history: 708,952.4 steps/s at 100 steps/configuration).
PR4_RECORD_CONFIGS_PER_S = 7_089.5
MIN_RECORD_FACTOR = 3.0

#: Global transitions per timed kernel call (consumed by benchmarks/_runner).
BENCH_STEPS = CONFIGURATIONS * STEPS


def _xor_forward(incoming, x):
    (value,) = incoming.values()
    return value ^ x, value


def _xor_ring_protocol(n: int) -> StatelessProtocol:
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _xor_forward) for i in range(n)
    ]
    return StatelessProtocol(
        topology, binary(), reactions, name=f"xor-ring({n})"
    )


def _population(protocol, count):
    import random

    rng = random.Random(0)
    topology = protocol.topology
    # Odd input parity: no stable labeling exists, every case runs the
    # full budget (see the module docstring).
    inputs = (1,) + (0,) * (topology.n - 1)
    return [
        SweepCase(
            inputs,
            Labeling(
                topology, tuple(rng.randrange(2) for _ in range(topology.m))
            ),
            tag=k,
        )
        for k in range(count)
    ]


def test_a05_batch_sweep_speedup(benchmark):
    protocol = _xor_ring_protocol(N)
    cases = _population(protocol, CONFIGURATIONS)
    subset = cases[:SERIAL_CONFIGURATIONS]
    schedule = RandomRFairSchedule(N, r=4, seed=2, p=0.9)

    def factory(index, case):
        return schedule

    def serial_kernel():
        return run_sweep(protocol, subset, factory, max_steps=STEPS)

    def batch_subset_kernel():
        return run_sweep(
            protocol, subset, factory, max_steps=STEPS, policy=BATCH
        )

    def batch_kernel():
        return run_sweep(
            protocol, cases, factory, max_steps=STEPS, policy=BATCH
        )

    # Equivalence and workload sanity on the serial-sized subset: equal
    # reports, full budget everywhere.
    serial_report = serial_kernel()
    batch_report = batch_subset_kernel()
    assert serial_report == batch_report
    assert all(r.outcome is RunOutcome.TIMEOUT for r in serial_report.results)
    assert all(r.steps_executed == STEPS for r in serial_report.results)
    if HAVE_NUMBA:

        def numba_kernel():
            return run_sweep(
                protocol, cases, factory, max_steps=STEPS, policy=NUMBA
            )

        numba_subset = run_sweep(
            protocol, subset, factory, max_steps=STEPS, policy=NUMBA
        )
        assert numba_subset == serial_report

    # Re-measure up to three times, keeping the best median per executor
    # (min-time estimation): the gates compare genuine throughput, so a
    # noisy or contended block must not flip them.  Same retry policy as
    # the a03 overhead gate.
    record_floor = MIN_RECORD_FACTOR * PR4_RECORD_CONFIGS_PER_S
    serial_median = batch_median = float("inf")
    for _attempt in range(3):
        serial_median = min(serial_median, median_time(serial_kernel, REPEATS)[0])
        batch_median = min(batch_median, median_time(batch_kernel, REPEATS)[0])
        serial_rate = SERIAL_CONFIGURATIONS / serial_median
        batch_rate = CONFIGURATIONS / batch_median
        speedup = batch_rate / serial_rate
        if speedup >= MIN_SPEEDUP and batch_rate >= record_floor:
            break
    numba_median = None
    if HAVE_NUMBA:
        numba_median, _ = median_time(numba_kernel, REPEATS)

    rows = [
        [
            f"serial compiled sweep ({SERIAL_CONFIGURATIONS} cases)",
            f"{serial_median:.4f}",
            f"{serial_rate:,.0f}",
            "1.0x",
        ],
        [
            "batch (numpy packed, fused windows)",
            f"{batch_median:.4f}",
            f"{batch_rate:,.0f}",
            f"{speedup:.1f}x",
        ],
    ]
    if numba_median is not None:
        rows.append(
            [
                "batch (numba kernels)",
                f"{numba_median:.4f}",
                f"{CONFIGURATIONS / numba_median:,.0f}",
                f"{CONFIGURATIONS / numba_median / serial_rate:.1f}x",
            ]
        )
    print_table(
        f"A5: batch sweep throughput — {N}-node ring, {CONFIGURATIONS:,}"
        f" configurations x {STEPS} steps, random 4-fair"
        f" (median of {REPEATS})",
        ["executor", "median s / sweep", "configurations/s", "speedup"],
        rows,
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batch executor only {speedup:.2f}x the serial sweep "
        f"({batch_rate:,.0f} vs {serial_rate:,.0f} configurations/s)"
    )
    assert batch_rate >= record_floor, (
        f"batch executor at {batch_rate:,.0f} configurations/s is below"
        f" {MIN_RECORD_FACTOR:.0f}x the committed PR-4 record"
        f" ({PR4_RECORD_CONFIGS_PER_S:,.1f} configurations/s)"
    )
    benchmark(batch_kernel)
