"""A6 — service cache throughput: warm resubmission vs cold execution.

Acceptance gate for the ``repro.service`` content-addressed result cache
(ISSUE 7): re-submitting an identical 1024-case sweep must be served from
the cache at **at least 5x** the cold configurations/s — and the served
report must equal the computed one bit for bit.

The warm figure deliberately includes the *whole* resubmission cost, not
just the lookups: a fresh plan is built each iteration (factory calls, case
coercion) and every fingerprint is recomputed, exactly what a second
``ServiceClient.submit_sweep`` of the same job pays.  The cold side runs
the serial compiled engine — the baseline a cache must beat is "just run
it again", and the serial executor is the honest floor for that (the batch
executor is itself a separately-gated accelerator, see A5).

Workload: the A5 xor-ring with odd input parity — no stable labeling
exists, so every cold case provably runs the full step budget and the cold
cost is workload-independent of the rng.  16 nodes x 1024 configurations
x 50 steps keeps the cold sweep around a quarter second; the measured
margin is ~10x with planning and fingerprinting included (~80x for the
lookups alone), so the 5x gate has real headroom.

The recorded kernel is a loop of ``WARM_RESUBMITS`` warm resubmissions
(one plan + full cache service each), giving ``check_regression.py`` a
stable ~50-150 ms measurement to gate on instead of a microsecond-noise
single resubmit.

Also asserted here (the ISSUE 7 acceptance criteria that need a sweep of
this size): incremental shard aggregates merge to exactly the one-shot
report, and the warm run's hit counters account for every case.
"""

import random

from _runner import median_time

from repro.analysis import SweepCase
from repro.analysis.tables import print_table
from repro.core import (
    Labeling,
    RandomRFairSchedule,
    RunOutcome,
    StatelessProtocol,
    UniformReaction,
    binary,
)
from repro.graphs import unidirectional_ring
from repro.service import InMemoryCache, execute_plan, iter_shards, plan_sweep

N = 16
CONFIGURATIONS = 1_024
STEPS = 50
REPEATS = 3
MIN_SPEEDUP = 5.0
#: Warm resubmissions per recorded kernel call (see module docstring).
WARM_RESUBMITS = 10
SHARD_SIZE = 128


def _xor_forward(incoming, x):
    (value,) = incoming.values()
    return value ^ x, value


def _xor_ring_protocol(n: int) -> StatelessProtocol:
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _xor_forward) for i in range(n)
    ]
    return StatelessProtocol(
        topology, binary(), reactions, name=f"xor-ring({n})"
    )


def _population(protocol, count):
    rng = random.Random(0)
    topology = protocol.topology
    # Odd input parity: no stable labeling exists, every cold case runs the
    # full budget (see the A5 docstring for the argument).
    inputs = (1,) + (0,) * (topology.n - 1)
    return [
        SweepCase(
            inputs,
            Labeling(
                topology, tuple(rng.randrange(2) for _ in range(topology.m))
            ),
            tag=k,
        )
        for k in range(count)
    ]


def test_a06_service_cache_speedup(benchmark):
    protocol = _xor_ring_protocol(N)
    cases = _population(protocol, CONFIGURATIONS)
    schedule = RandomRFairSchedule(N, r=4, seed=2, p=0.9)

    def factory(index, case):
        return schedule

    def build_plan():
        return plan_sweep(protocol, cases, factory, max_steps=STEPS)

    cache = InMemoryCache()

    def cold_kernel():
        # A cacheless serial execution: what resubmission costs without
        # the service layer.
        return execute_plan(build_plan())

    def warm_resubmit():
        # A full resubmission: plan afresh, fingerprint every case, serve
        # from the shared cache.
        return execute_plan(build_plan(), cache=cache)

    def warm_loop():
        report = None
        for _ in range(WARM_RESUBMITS):
            report = warm_resubmit()
        return report

    # -- correctness first: the gate is meaningless on unequal reports ----
    cold_report = execute_plan(build_plan(), cache=cache)  # fills the cache
    assert all(r.outcome is RunOutcome.TIMEOUT for r in cold_report.results)
    assert all(r.steps_executed == STEPS for r in cold_report.results)
    assert cache.stats.misses == CONFIGURATIONS

    warm_report = warm_resubmit()
    assert warm_report == cold_report, "cache-served report differs"
    assert cache.stats.hits == CONFIGURATIONS

    # Incremental aggregation (ISSUE 7): streamed shard aggregates merge to
    # exactly the one-shot report, warm and sharded alike.
    last = None
    for shard in iter_shards(build_plan(), cache=cache, shard_size=SHARD_SIZE):
        last = shard
    assert last.done and last.total_shards == CONFIGURATIONS // SHARD_SIZE
    assert last.aggregate == cold_report
    assert last.cache_hits == CONFIGURATIONS

    # -- the gate: cold vs warm configurations/s --------------------------
    # Re-measure up to three times keeping the best median per side
    # (min-time estimation), as in the A3/A5 gates: contention must not
    # flip a genuine 50x margin below 5x.
    cold_median = warm_median = float("inf")
    for _attempt in range(3):
        cold_median = min(cold_median, median_time(cold_kernel, REPEATS)[0])
        warm_median = min(
            warm_median, median_time(warm_resubmit, REPEATS)[0]
        )
        speedup = cold_median / warm_median
        if speedup >= MIN_SPEEDUP:
            break

    cold_rate = CONFIGURATIONS / cold_median
    warm_rate = CONFIGURATIONS / warm_median

    # The recorded kernel: a stable multi-resubmit loop over the warm cache.
    looped = benchmark(warm_loop)
    assert looped == cold_report

    print_table(
        f"A6: service cache — {N}-node xor-ring, {CONFIGURATIONS:,}"
        f" configurations x {STEPS} steps, warm resubmission vs cold serial"
        f" (median of {REPEATS})",
        ["path", "median s / sweep", "configurations/s", "speedup"],
        [
            [
                "cold (serial executor, no cache)",
                f"{cold_median:.4f}",
                f"{cold_rate:,.0f}",
                "1.0x",
            ],
            [
                "warm (plan + fingerprint + cache)",
                f"{warm_median:.4f}",
                f"{warm_rate:,.0f}",
                f"{speedup:.1f}x",
            ],
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"warm resubmission only {speedup:.2f}x the cold sweep"
        f" ({warm_rate:,.0f} vs {cold_rate:,.0f} configurations/s)"
    )
