"""A3 — resilience-sweep overhead: the fault path must be (nearly) free.

Acceptance gate for the ``repro.faults`` subsystem: when **no fault fires**,
``run_resilience_sweep`` must deliver at least 0.8x the throughput of the
bare compiled sweep path (``run_sweep``) on the same workload — i.e. the
injection machinery (fault fire-list materialization, schedule shifting,
recovery bookkeeping) may cost at most the acceptance budget of a 20%
throughput loss; measured, it is noise-level (~1.0x).  A fault-firing
variant is measured alongside for the record (not gated: applying faults
does strictly more work).

Workload: a 33-node inverter ring (every node negates its incoming bit; an
odd ring has **no** stable labeling) under seeded random r-fair schedules,
so every case provably runs the full step budget through the aperiodic
certification loop — a fixed, comparable number of global transitions per
kernel call.
"""

from _runner import median_time

from repro.analysis import SweepCase, run_resilience_sweep, run_sweep
from repro.analysis.tables import print_table
from repro.core import (
    Labeling,
    RandomRFairSchedule,
    StatelessProtocol,
    UniformReaction,
    binary,
)
from repro.core.convergence import RunOutcome
from repro.faults import BurstFault, NoFaults, RandomCorruption
from repro.graphs import unidirectional_ring

N = 33
STEPS = 300
CASES = 6
REPEATS = 5
MIN_THROUGHPUT_RATIO = 0.8

#: Global transitions per timed kernel call (consumed by benchmarks/_runner).
BENCH_STEPS = STEPS * CASES


def _invert_bit(incoming, _x):
    (value,) = incoming.values()
    return 1 - value, value


def _inverter_ring_protocol(n: int) -> StatelessProtocol:
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _invert_bit) for i in range(n)
    ]
    return StatelessProtocol(
        topology, binary(), reactions, name=f"inverter-ring({n})"
    )


def _cases(protocol):
    m = protocol.topology.m
    mixed = Labeling(protocol.topology, tuple(k % 2 for k in range(m)))
    return [SweepCase((0,) * N, mixed, tag=k) for k in range(CASES)]


def _schedule_factory(index, case):
    return RandomRFairSchedule(N, r=4, seed=index)


def _no_fault_factory(index, case):
    return NoFaults()


def _burst_fault_factory(index, case):
    return BurstFault([STEPS // 3, 2 * STEPS // 3], RandomCorruption(0.5, seed=index))


def test_a03_resilience_sweep_overhead(benchmark):
    protocol = _inverter_ring_protocol(N)
    cases = _cases(protocol)

    def bare_kernel():
        return run_sweep(protocol, cases, _schedule_factory, max_steps=STEPS)

    def no_fault_kernel():
        return run_resilience_sweep(
            protocol, cases, _schedule_factory, _no_fault_factory, max_steps=STEPS
        )

    def fault_kernel():
        return run_resilience_sweep(
            protocol, cases, _schedule_factory, _burst_fault_factory, max_steps=STEPS
        )

    # Workload sanity: every case runs the full budget in both paths, and
    # the no-fault resilience results mirror the bare sweep results.
    bare_report = bare_kernel()
    no_fault_report = no_fault_kernel()
    assert all(r.steps_executed == STEPS for r in bare_report.results)
    assert all(r.steps_executed == STEPS for r in no_fault_report.results)
    assert all(r.faults_fired == 0 for r in no_fault_report.results)
    for bare, injected in zip(
        bare_report.results, no_fault_report.results, strict=True
    ):
        assert injected.outcome == bare.outcome
        assert injected.final_values == bare.final_values
    fault_report = fault_kernel()
    assert all(r.faults_fired == 2 for r in fault_report.results)
    assert all(r.outcome is RunOutcome.TIMEOUT for r in fault_report.results)

    # The two paths differ by ~constant-per-case work, so the true ratio is
    # ~1.0; re-measure up to three times before failing so one noisy burst
    # (CI neighbors, pytest-benchmark rounds in the same process) cannot
    # flip a sub-ms difference across the gate.
    for _attempt in range(3):
        bare_median, _ = median_time(bare_kernel, REPEATS)
        no_fault_median, _ = median_time(no_fault_kernel, REPEATS)
        ratio = bare_median / no_fault_median
        if ratio >= MIN_THROUGHPUT_RATIO:
            break
    fault_median, _ = median_time(fault_kernel, REPEATS)
    bare_rate = BENCH_STEPS / bare_median
    no_fault_rate = BENCH_STEPS / no_fault_median
    fault_rate = BENCH_STEPS / fault_median

    print_table(
        f"A3: resilience sweep overhead — {N}-node ring, {CASES} cases x "
        f"{STEPS} steps, random 4-fair (median of {REPEATS})",
        ["path", "median s / sweep", "steps/s", "vs bare"],
        [
            ["bare run_sweep", f"{bare_median:.4f}", f"{bare_rate:,.0f}", "1.00x"],
            [
                "resilience, no fault fires",
                f"{no_fault_median:.4f}",
                f"{no_fault_rate:,.0f}",
                f"{ratio:.2f}x",
            ],
            [
                "resilience, 2-burst corruption",
                f"{fault_median:.4f}",
                f"{fault_rate:,.0f}",
                f"{fault_rate / bare_rate:.2f}x",
            ],
        ],
    )

    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"no-fault resilience path only {ratio:.2f}x the bare sweep "
        f"({no_fault_rate:,.0f} vs {bare_rate:,.0f} steps/s)"
    )
    benchmark(no_fault_kernel)
