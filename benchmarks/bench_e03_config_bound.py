"""E3 — Proposition 2.2: R_n <= |Sigma|^|E| (configuration-count bound).

Exhaustively measures worst-case convergence time over *all* initial
labelings for small label-stabilizing protocols and checks it against the
trivial configuration bound.
"""

from itertools import product

from repro.analysis import print_table
from repro.core import Labeling, Simulator, SynchronousSchedule, default_inputs
from repro.power import worst_case_protocol
from repro.stabilization import example1_protocol


def _worst_rounds(protocol, labels):
    inputs = default_inputs(protocol)
    simulator = Simulator(protocol, inputs)
    worst = 0
    for values in product(labels, repeat=protocol.topology.m):
        labeling = Labeling(protocol.topology, values)
        report = simulator.run(labeling, SynchronousSchedule(protocol.n))
        if report.label_rounds is not None:
            worst = max(worst, report.label_rounds)
    return worst


def _experiment_rows():
    rows = []
    cases = [
        ("example1(K_3)", example1_protocol(3), (0, 1)),
        ("worst-case-ring(3,2)", worst_case_protocol(3, 2), (0, 1)),
        ("worst-case-ring(4,2)", worst_case_protocol(4, 2), (0, 1)),
        ("worst-case-ring(3,3)", worst_case_protocol(3, 3), (0, 1, 2)),
    ]
    for name, protocol, labels in cases:
        bound = protocol.label_space.size ** protocol.topology.m
        worst = _worst_rounds(protocol, labels)
        rows.append([name, worst, bound, worst <= bound])
        assert worst <= bound
    return rows


def test_e03_configuration_bound(benchmark):
    rows = _experiment_rows()
    print_table(
        "E3: Proposition 2.2 — paper: R_n <= |Sigma|^|E|",
        ["protocol", "measured worst rounds", "|Sigma|^|E|", "holds"],
        rows,
    )
    protocol = worst_case_protocol(3, 2)
    benchmark(lambda: _worst_rounds(protocol, (0, 1)))
