"""E9 — Theorem 5.2: unidirectional rings with log labels decide L/poly.

Regenerates both directions on concrete machines:
* machine/BP -> ring protocol: correct self-stabilizing computation, label
  complexity O(log |Z|), rounds within the epoch bound;
* ring protocol -> logspace-style simulation: the single-label diagonal loop
  reproduces the engine's answer.
"""

import math
import random
from itertools import product

from repro.analysis import SweepCase, print_table, run_sweep
from repro.core import Labeling, SynchronousSchedule
from repro.power import (
    bp_ring_protocol,
    bp_ring_round_bound,
    machine_ring_protocol,
    machine_ring_round_bound,
    simulate_unidirectional,
)
from repro.substrates.branching_programs import majority_bp, parity_bp
from repro.substrates.turing import (
    ConfigurationGraph,
    contains_one_machine,
    first_equals_last_machine,
    parity_machine,
)

MACHINES = [
    ("parity", parity_machine, lambda x: sum(x) % 2),
    ("contains-one", contains_one_machine, lambda x: int(any(x))),
    ("first=last", first_equals_last_machine, lambda x: int(x[0] == x[-1])),
]


def _machine_row(name, factory, reference, n):
    graph = ConfigurationGraph(factory(), n)
    protocol = machine_ring_protocol(graph)
    bound = machine_ring_round_bound(graph)
    rng = random.Random(0)
    cases = [
        SweepCase(
            inputs=x,
            labeling=Labeling.random(protocol.topology, protocol.label_space, rng),
            tag=x,
        )
        for x in product((0, 1), repeat=n)
    ]
    sweep = run_sweep(
        protocol,
        cases,
        lambda _i, _c: SynchronousSchedule(n),
        max_steps=bound + 200,
    )
    for result in sweep.results:
        assert result.output_stable
        assert set(result.outputs) == {reference(result.tag)}
    worst = sweep.worst_output_rounds
    return [
        name,
        n,
        graph.size,
        f"{protocol.label_complexity:.1f}",
        f"{2 * math.log2(graph.size) + 2:.1f}",
        worst,
        bound,
    ]


def _experiment_rows():
    return [_machine_row(*machine, n=3) for machine in MACHINES]


def test_e09_unidirectional_power(benchmark):
    rows = _experiment_rows()
    print_table(
        "E9: Theorem 5.2 — paper: TM-with-advice simulated on the ring with "
        "O(log) labels; measured rounds vs epoch bound",
        ["machine", "n", "|Z|", "measured bits", "O(log|Z|) scale",
         "measured rounds", "bound"],
        rows,
    )

    bp_rows = []
    for name, bp, reference in (
        ("parity-bp", parity_bp(4), lambda x: sum(x) % 2),
        ("majority-bp", majority_bp(3), lambda x: int(sum(x) >= len(x) / 2)),
    ):
        protocol = bp_ring_protocol(bp)
        n = bp.n_inputs
        initial = next(iter(protocol.label_space))
        agree = all(
            simulate_unidirectional(
                protocol, x, initial, steps=bp_ring_round_bound(bp) + 4 * n
            )
            == reference(x)
            for x in product((0, 1), repeat=n)
        )
        bp_rows.append([name, bp.size, protocol.label_complexity, agree])
        assert agree
    print_table(
        "E9b: the logspace-style diagonal simulation agrees with the engine",
        ["program", "BP size", "label bits", "diagonal sim correct"],
        bp_rows,
    )

    graph = ConfigurationGraph(parity_machine(), 3)
    protocol = machine_ring_protocol(graph)
    initial = next(iter(protocol.label_space))
    benchmark(
        lambda: simulate_unidirectional(
            protocol, (1, 0, 1), initial, steps=machine_ring_round_bound(graph)
        )
    )
