"""A2 — engine throughput: compiled fast path vs the legacy dict-based step.

Acceptance gate for the compiled engine core: on a 64-node unidirectional
ring under the synchronous schedule, the compiled path must deliver at least
3x the steps/s of the legacy implementation (per-step ``{Edge: Label}`` dict
construction, out-edge set validation, and fresh ``Labeling`` objects —
reproduced verbatim below as the baseline).
"""

from _runner import median_time

from repro.analysis import print_table
from repro.core import (
    Configuration,
    Labeling,
    Simulator,
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
)
from repro.exceptions import ValidationError
from repro.graphs import unidirectional_ring

N = 64
STEPS = 512
REPEATS = 5

#: Global transitions per timed kernel call (consumed by benchmarks/_runner).
BENCH_STEPS = STEPS


def _copy_ring_protocol(n: int) -> StatelessProtocol:
    topology = unidirectional_ring(n)

    def make(i):
        def forward(incoming, _x):
            (value,) = incoming.values()
            return value, value

        return UniformReaction(topology.out_edges(i), forward)

    return StatelessProtocol(
        topology, binary(), [make(i) for i in range(n)], name=f"copy-ring({n})"
    )


def _mixed_labeling(topology) -> Labeling:
    return Labeling(topology, tuple(k % 2 for k in range(topology.m)))


# -- the pre-compiled-engine implementation, kept as the baseline ------------


def _legacy_step(protocol, inputs, config, active):
    labeling = config.labeling
    updates = {}
    outputs = list(config.outputs)
    for i in active:
        incoming = labeling.incoming(i)
        outgoing, y = protocol.reaction(i)(incoming, inputs[i])
        expected = protocol.topology.out_edges(i)
        if set(outgoing) != set(expected):
            raise ValidationError(
                f"reaction of node {i} labeled edges {sorted(outgoing)}"
                f" but must label exactly {sorted(expected)}"
            )
        updates.update(outgoing)
        outputs[i] = y
    new_labeling = labeling.replace(updates) if updates else labeling
    return Configuration(new_labeling, tuple(outputs))


def _legacy_run_trace(protocol, inputs, labeling, schedule, steps):
    config = Configuration(labeling, (None,) * protocol.n)
    trace = [config]
    for t in range(steps):
        config = _legacy_step(protocol, inputs, config, schedule.active(t))
        trace.append(config)
    return trace


# -- measurement -------------------------------------------------------------


def test_a02_engine_throughput(benchmark):
    protocol = _copy_ring_protocol(N)
    labeling = _mixed_labeling(protocol.topology)
    inputs = (0,) * N
    schedule = SynchronousSchedule(N)
    simulator = Simulator(protocol, inputs)

    def compiled_kernel():
        return simulator.run_trace(labeling, schedule, STEPS)

    def legacy_kernel():
        return _legacy_run_trace(protocol, inputs, labeling, schedule, STEPS)

    # The two engines must agree configuration-for-configuration.
    assert compiled_kernel() == legacy_kernel()

    legacy_median, _ = median_time(legacy_kernel, REPEATS)
    compiled_median, _ = median_time(compiled_kernel, REPEATS)
    legacy_rate = STEPS / legacy_median
    compiled_rate = STEPS / compiled_median
    speedup = compiled_rate / legacy_rate

    print_table(
        f"A2: compiled engine throughput — {N}-node ring, synchronous, "
        f"{STEPS} steps (median of {REPEATS})",
        ["engine", "median s / kernel", "steps/s", "speedup"],
        [
            [
                "legacy dict-based",
                f"{legacy_median:.4f}",
                f"{legacy_rate:,.0f}",
                "1.0x",
            ],
            [
                "compiled fast path",
                f"{compiled_median:.4f}",
                f"{compiled_rate:,.0f}",
                f"{speedup:.1f}x",
            ],
        ],
    )

    assert speedup >= 3.0, (
        f"compiled path only {speedup:.2f}x the legacy engine "
        f"({compiled_rate:,.0f} vs {legacy_rate:,.0f} steps/s)"
    )
    benchmark(compiled_kernel)
