"""E13 — Theorem 5.10: the counting lower bound L_n >= n/(4k).

Two parts:
* the asymptotic table (bound per n, k; protocol-count arithmetic);
* an *exact census* of the 2-node unidirectional ring: which of the 16
  two-bit Boolean functions are computable with 0-bit labels (|Sigma| = 1:
  only the constants) vs 1-bit labels (all 16) — the counting phenomenon in
  the smallest possible system.
"""

import math

from repro.analysis import print_table
from repro.power import (
    counting_lower_bound,
    functions_count,
    smallest_sufficient_label_bits,
    two_ring_census,
)


def _bound_rows():
    rows = []
    for n, k in ((9, 1), (16, 2), (32, 2), (64, 4), (128, 2), (1024, 3)):
        rows.append(
            [
                n,
                k,
                f"{counting_lower_bound(n, k):.1f}",
                f"2^{2**n}" if n <= 16 else f"2^(2^{n})",
                smallest_sufficient_label_bits(n, k),
            ]
        )
    return rows


def _census_rows():
    rows = []
    for sigma_size, bits in ((1, 0.0), (2, 1.0)):
        census = two_ring_census(sigma_size)
        computable = sum(1 for ok in census.values() if ok)
        rows.append([sigma_size, bits, f"{computable}/16"])
    return rows


def test_e13_counting_bound(benchmark):
    print_table(
        "E13: Theorem 5.10 — paper: some f needs L_n >= n/(4k) on "
        "max-degree-k graphs",
        ["n", "k", "lower bound n/(4k)", "#functions", "sufficient bits (calc)"],
        _bound_rows(),
    )
    census = _census_rows()
    print_table(
        "E13b: exact protocol census on the 2-ring — label bits vs "
        "computable functions",
        ["|Sigma|", "label bits", "computable 2-bit functions"],
        census,
    )
    assert census[0][2] == "2/16"  # only constants without communication
    assert census[1][2] == "16/16"

    # bound is monotone and the proof inequality direction holds
    values = [counting_lower_bound(n, 3) for n in range(9, 60)]
    assert values == sorted(values)
    assert functions_count(4) == 2**16
    protocols_log2 = 2 * 16 * 1 * math.log2(2)  # |Sigma| = 1, k = 2, n = 16
    assert protocols_log2 < 2**16  # far fewer protocols than functions

    benchmark(lambda: sum(two_ring_census(2).values()))
