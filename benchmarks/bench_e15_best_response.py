"""E15 — Section 3 implications: best-response dynamics instability.

The Theorem 3.1 corollary across the paper's application domains: multiple
equilibria imply no (n-1)-stabilization for coordination games, BGP routing
(DISAGREE), technology diffusion, congestion, and the SR latch; BAD GADGET
has no equilibrium and oscillates structurally; GOOD GADGET converges.
"""

from repro.analysis import print_table
from repro.core import (
    Labeling,
    RunOutcome,
    Simulator,
    SynchronousSchedule,
    default_inputs,
)
from repro.dynamics import (
    NO_ROUTE,
    bad_gadget,
    best_response_protocol,
    bgp_protocol,
    congestion_protocol,
    contagion_protocol,
    coordination_game,
    disagree,
    good_gadget,
    ring_oscillator,
    sr_latch,
)
from repro.graphs import bidirectional_ring, clique
from repro.stabilization import (
    broadcast_labelings,
    decide_label_r_stabilizing,
    is_stable_labeling,
    stable_labelings,
)


def _count_stable(protocol, inputs):
    return len(
        stable_labelings(
            protocol,
            inputs,
            broadcast_labelings(protocol.topology, protocol.label_space),
        )
    )


def _verdict(protocol, inputs, r):
    return decide_label_r_stabilizing(
        protocol,
        inputs,
        r,
        initial_labelings=broadcast_labelings(
            protocol.topology, protocol.label_space
        ),
    ).stabilizing


def _experiment_rows():
    rows = []

    protocol = best_response_protocol(coordination_game(clique(3)))
    inputs = default_inputs(protocol)
    rows.append(
        ["coordination K_3", _count_stable(protocol, inputs),
         _verdict(protocol, inputs, 2), "Thm 3.1: no"]
    )

    protocol = bgp_protocol(disagree())
    inputs = default_inputs(protocol)
    rows.append(
        ["BGP DISAGREE", _count_stable(protocol, inputs),
         _verdict(protocol, inputs, 2), "Thm 3.1: no"]
    )

    protocol = bgp_protocol(good_gadget())
    inputs = default_inputs(protocol)
    rows.append(
        ["BGP GOOD GADGET", _count_stable(protocol, inputs),
         _verdict(protocol, inputs, 3), "converges"]
    )

    protocol = contagion_protocol(bidirectional_ring(4), theta=0.5)
    inputs = default_inputs(protocol)
    rows.append(
        ["contagion ring(4)", _count_stable(protocol, inputs),
         _verdict(protocol, inputs, 3), "Thm 3.1: no"]
    )

    protocol = congestion_protocol(3, 2)
    inputs = default_inputs(protocol)
    rows.append(
        ["congestion 3x2", _count_stable(protocol, inputs),
         _verdict(protocol, inputs, 2), "Thm 3.1: no"]
    )

    protocol = sr_latch()
    rows.append(
        ["SR latch (S=R=0)", _count_stable(protocol, (0, 0)),
         _verdict(protocol, (0, 0), 1), "Thm 3.1: no"]
    )
    return rows


def test_e15_best_response(benchmark):
    rows = _experiment_rows()
    print_table(
        "E15: Section 3 — paper: >= 2 stable labelings => not "
        "(n-1)-stabilizing, across application domains",
        ["system", "stable labelings", "(n-1)-stabilizing", "paper prediction"],
        rows,
    )
    # systems with >= 2 stable labelings must not stabilize
    for row in rows:
        if isinstance(row[1], int) and row[1] >= 2:
            assert row[2] is False
        if row[0] == "BGP GOOD GADGET":
            assert row[1] == 1 and row[2] is True

    # structural oscillators: no stable labeling at all
    bad = bgp_protocol(bad_gadget())
    assert _count_stable(bad, default_inputs(bad)) == 0
    report = Simulator(bad, default_inputs(bad)).run(
        Labeling.uniform(bad.topology, NO_ROUTE),
        SynchronousSchedule(bad.n),
        max_steps=2000,
    )
    assert report.outcome is RunOutcome.OSCILLATING

    osc = ring_oscillator(3)
    inputs = default_inputs(osc)
    assert not any(
        is_stable_labeling(osc, inputs, labeling)
        for labeling in broadcast_labelings(osc.topology, osc.label_space)
    )

    protocol = bgp_protocol(disagree())
    inputs = default_inputs(protocol)
    benchmark(lambda: _verdict(protocol, inputs, 2))
