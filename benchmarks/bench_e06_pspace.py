"""E6 — Theorem 4.2 (B.11/B.14): PSPACE-completeness reduction, executably.

Regenerates the equivalence chain on small instances:
  String-Oscillation(g)  <=>  stateful protocol not r-stabilizing
                          <=>  compiled stateless protocol not stabilizing.
"""

from repro.analysis import print_table
from repro.core import (
    RoundRobinSchedule,
    Simulator,
    SynchronousSchedule,
    default_inputs,
)
from repro.hardness import (
    always_halt,
    expand_inputs,
    expand_labeling,
    halt_unless_all_b,
    halt_when_uniform,
    metanode_compile,
    never_halt_rotate,
    oscillating_start,
    procedure_labeling,
    stateful_protocol_from_g,
    toggle_forever,
)
from repro.stabilization import broadcast_labelings, decide_label_r_stabilizing

CASES = [
    ("always_halt", always_halt),
    ("halt_when_uniform", halt_when_uniform),
    ("never_halt_rotate", never_halt_rotate),
    ("toggle_forever", toggle_forever),
    ("halt_unless_all_b", halt_unless_all_b),
]


def _experiment_rows():
    rows = []
    alphabet = ("a", "b")
    m = 2
    for name, g in CASES:
        witness = oscillating_start(g, alphabet, m)
        protocol = stateful_protocol_from_g(g, alphabet, m)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        match = (witness is None) == verdict.stabilizing
        rows.append(
            [name, witness, verdict.stabilizing, match, verdict.states_explored]
        )
        assert match
    return rows


def test_e06_pspace_reduction(benchmark):
    rows = _experiment_rows()
    print_table(
        "E6: Theorem 4.2 — paper: protocol r-stabilizing iff the procedure "
        "always halts",
        ["g", "oscillating start", "protocol 2-stabilizing", "equiv holds",
         "states"],
        rows,
    )

    # metanode compiler preserves both behaviors (Theorem B.14)
    compiler_rows = []
    for name, g in (
        ("never_halt_rotate", never_halt_rotate),
        ("always_halt", always_halt),
    ):
        protocol = stateful_protocol_from_g(g, ("a", "b"), 2)
        compiled = metanode_compile(protocol)
        labeling = expand_labeling(
            protocol, procedure_labeling(protocol, g, ("a", "b"))
        )
        report = Simulator(compiled, expand_inputs(default_inputs(protocol))).run(
            labeling, SynchronousSchedule(compiled.n), max_steps=3000
        )
        compiler_rows.append(
            [name, f"{protocol.n} -> {compiled.n} nodes", report.outcome.value]
        )
    print_table(
        "E6b: Theorem B.14 — metanode compiler preserves (non-)stabilization",
        ["g", "compilation", "compiled synchronous outcome"],
        compiler_rows,
    )
    assert compiler_rows[0][2] != "label-stable"
    assert compiler_rows[1][2] == "label-stable"

    g = halt_unless_all_b
    protocol = stateful_protocol_from_g(g, ("a", "b"), 2)
    labeling = procedure_labeling(protocol, g, ("b", "b"))
    simulator = Simulator(protocol, default_inputs(protocol))

    def kernel():
        return simulator.run(
            labeling, RoundRobinSchedule(protocol.n), max_steps=500
        ).label_stable

    assert benchmark(kernel) is False
