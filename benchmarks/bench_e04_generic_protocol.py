"""E4 — Proposition 2.3: the generic protocol (L_n = n+1, R_n <= 2n).

Measures, per topology: label complexity (exactly n+1 bits) and worst label
convergence over random functions / inputs / initial labelings vs. the 2n
bound.
"""

import random

from repro.analysis import print_table
from repro.core import Labeling, Simulator, SynchronousSchedule
from repro.graphs import bidirectional_ring, clique, random_strongly_connected, unidirectional_ring
from repro.power import generic_protocol, generic_round_bound
from repro.power.generic_protocol import label_complexity


def _measure(topology, trials=5, seed=0):
    rng = random.Random(seed)
    truth = {}

    def f(bits):
        key = tuple(bits)
        if key not in truth:
            truth[key] = rng.randrange(2)
        return truth[key]

    protocol = generic_protocol(topology, f)
    worst = 0
    for _ in range(trials):
        x = tuple(rng.randrange(2) for _ in range(topology.n))
        labeling = Labeling.random(topology, protocol.label_space, rng)
        report = Simulator(protocol, x).run(labeling, SynchronousSchedule(topology.n))
        assert report.label_stable
        assert all(y == f(x) for y in report.outputs)
        worst = max(worst, report.label_rounds)
    return protocol, worst


def _experiment_rows():
    rows = []
    for topology in (
        unidirectional_ring(5),
        bidirectional_ring(6),
        clique(5),
        random_strongly_connected(7, 4, seed=11),
    ):
        protocol, worst = _measure(topology)
        n = topology.n
        rows.append(
            [
                topology.name,
                f"{protocol.label_complexity:.0f}",
                label_complexity(n),
                worst,
                generic_round_bound(n),
                worst <= generic_round_bound(n),
            ]
        )
        assert worst <= generic_round_bound(n)
        assert protocol.label_complexity == label_complexity(n)
    return rows


def test_e04_generic_protocol(benchmark):
    rows = _experiment_rows()
    print_table(
        "E4: Proposition 2.3 — paper: L_n = n+1 bits, R_n <= 2n, "
        "label-stabilizing for every f",
        ["topology", "measured L_n", "paper L_n", "measured R_n",
         "paper bound 2n", "holds"],
        rows,
    )
    topology = clique(5)
    benchmark(lambda: _measure(topology, trials=2, seed=3)[1])
