"""E4 — Proposition 2.3: the generic protocol (L_n = n+1, R_n <= 2n).

Measures, per topology: label complexity (exactly n+1 bits) and worst label
convergence over random functions / inputs / initial labelings vs. the 2n
bound.
"""

import random

from repro.analysis import SweepCase, print_table, run_sweep
from repro.core import Labeling, SynchronousSchedule
from repro.graphs import (
    bidirectional_ring,
    clique,
    random_strongly_connected,
    unidirectional_ring,
)
from repro.power import generic_protocol, generic_round_bound
from repro.power.generic_protocol import label_complexity


def _measure(topology, trials=5, seed=0):
    case_rng = random.Random(seed)
    truth_rng = random.Random(seed + 1)
    truth = {}

    def f(bits):
        key = tuple(bits)
        if key not in truth:
            truth[key] = truth_rng.randrange(2)
        return truth[key]

    protocol = generic_protocol(topology, f)
    cases = [
        SweepCase(
            inputs=tuple(case_rng.randrange(2) for _ in range(topology.n)),
            labeling=Labeling.random(topology, protocol.label_space, case_rng),
        )
        for _ in range(trials)
    ]
    sweep = run_sweep(
        protocol, cases, lambda _i, _c: SynchronousSchedule(topology.n)
    )
    for case, result in zip(cases, sweep.results, strict=True):
        assert result.label_stable
        assert all(y == f(case.inputs) for y in result.outputs)
    return protocol, sweep.worst_label_rounds


def _experiment_rows():
    rows = []
    for topology in (
        unidirectional_ring(5),
        bidirectional_ring(6),
        clique(5),
        random_strongly_connected(7, 4, seed=11),
    ):
        protocol, worst = _measure(topology)
        n = topology.n
        rows.append(
            [
                topology.name,
                f"{protocol.label_complexity:.0f}",
                label_complexity(n),
                worst,
                generic_round_bound(n),
                worst <= generic_round_bound(n),
            ]
        )
        assert worst <= generic_round_bound(n)
        assert protocol.label_complexity == label_complexity(n)
    return rows


def test_e04_generic_protocol(benchmark):
    rows = _experiment_rows()
    print_table(
        "E4: Proposition 2.3 — paper: L_n = n+1 bits, R_n <= 2n, "
        "label-stabilizing for every f",
        ["topology", "measured L_n", "paper L_n", "measured R_n",
         "paper bound 2n", "holds"],
        rows,
    )
    topology = clique(5)
    benchmark(lambda: _measure(topology, trials=2, seed=3)[1])
