"""A8 — complexity-scaling trajectories for the symbolic cost model.

Where A2/A5 gate throughput *constants*, this bench records the measured
*scaling ladders* the cost-model gate fits: per-size timings whose fitted
complexity class must stay within the class the implementation shipped
under (``repro.analysis.costmodel.BENCH_EXPECTATIONS``).  A constant-factor
slowdown trips A2/A5's 30% threshold; an O(n) → O(n²) slip can *improve*
the constants while ruining scalability, and only this record catches it.

Two ladders, one per symbolic model symbol the implementation promises
linearity in:

* ``test_a08_engine_node_scaling`` — the serial compiled engine on XOR
  rings of n = 16..128 nodes at a fixed step budget and case count.  The
  model (``COST_MODELS["engine.compiled"]``: work = C·S·n·d) says time is
  linear in n; a quadratic fit means some per-step path started touching
  all-pairs state.
* ``test_a08_batch_width_scaling`` — the batch backend at widths
  B = 2k..16k rows on a fixed 64-node ring.  The model
  (``COST_MODELS["batch.fused"]``: work = B·S·n·d) says time is linear in
  B; superlinear growth means the lockstep kernels stopped vectorizing
  over rows.

Each entry carries parallel ``sizes`` / ``times_s`` arrays (via
``benchmark.extra``) — exactly the trajectory shape
:func:`repro.analysis.costmodel.fit_trajectory` consumes, and what
``check_regression.py``'s complexity pass and the standalone
``python -m repro.analysis.costmodel benchmarks`` CI step re-fit on every
run.  The XOR-ring workload has odd input parity, so no stable labeling
exists and every case provably runs the full step budget: measured time is
pure engine work at a fixed, size-independent step count.
"""

from _runner import median_time

from repro import ExecutionPolicy
from repro.analysis import SweepCase, print_table, run_sweep
from repro.core import (
    Labeling,
    RandomRFairSchedule,
    StatelessProtocol,
    UniformReaction,
    binary,
)
from repro.graphs import unidirectional_ring

#: Node-count ladder for the serial engine (fixed cases x steps each).
NODE_SIZES = (16, 32, 64, 128)
NODE_CASES = 16
NODE_STEPS = 150

#: Batch-width ladder for the vectorized backend (fixed nodes and steps).
WIDTH_SIZES = (2_000, 4_000, 8_000, 16_000)
WIDTH_N = 64
WIDTH_STEPS = 100

REPEATS = 3
BATCH = ExecutionPolicy(executor="batch")


def _xor_forward(incoming, x):
    (value,) = incoming.values()
    return value ^ x, value


def _xor_ring_protocol(n: int) -> StatelessProtocol:
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _xor_forward) for i in range(n)
    ]
    return StatelessProtocol(
        topology, binary(), reactions, name=f"xor-ring({n})"
    )


def _population(protocol, count):
    import random

    rng = random.Random(0)
    topology = protocol.topology
    # Odd input parity: no stable labeling, every case runs the full budget.
    inputs = (1,) + (0,) * (topology.n - 1)
    return [
        SweepCase(
            inputs,
            Labeling(
                topology, tuple(rng.randrange(2) for _ in range(topology.m))
            ),
            tag=k,
        )
        for k in range(count)
    ]


def _ladder_table(title, size_label, sizes, times):
    print_table(
        title,
        [size_label, "time (s)", "s / size unit"],
        [
            [f"{size:,}", f"{elapsed:.4f}", f"{elapsed / size:.3g}"]
            for size, elapsed in zip(sizes, times, strict=True)
        ],
    )


def _node_sweep(n):
    # A seeded random r-fair schedule, as in A5: aperiodic activation
    # sequences defeat the engine's cycle detector, so every case provably
    # runs the full budget and measured time is size-independent step work.
    protocol = _xor_ring_protocol(n)
    cases = _population(protocol, NODE_CASES)
    schedule = RandomRFairSchedule(n, r=4, seed=2, p=0.9)
    return run_sweep(
        protocol, cases, lambda i, c: schedule, max_steps=NODE_STEPS
    )


def test_a08_engine_node_scaling(benchmark):
    times = []
    for n in NODE_SIZES:
        elapsed, report = median_time(lambda n=n: _node_sweep(n), REPEATS)
        assert all(r.steps_executed == NODE_STEPS for r in report.results)
        times.append(elapsed)

    # The timed entry kernel re-runs the largest size (so kernel_median_s
    # stays a plain throughput figure); the ladder ships via extra.
    benchmark(lambda: _node_sweep(NODE_SIZES[-1]))
    benchmark.extra["sizes"] = list(NODE_SIZES)
    benchmark.extra["times_s"] = times
    _ladder_table(
        f"A8: serial engine node scaling — {NODE_CASES} cases x"
        f" {NODE_STEPS} steps (median of {REPEATS})",
        "nodes",
        NODE_SIZES,
        times,
    )


def test_a08_batch_width_scaling(benchmark):
    protocol = _xor_ring_protocol(WIDTH_N)
    population = _population(protocol, WIDTH_SIZES[-1])
    schedule = RandomRFairSchedule(WIDTH_N, r=4, seed=2, p=0.9)

    def factory(index, case):
        return schedule

    times = []
    for width in WIDTH_SIZES:

        def kernel(cases=population[:width]):
            return run_sweep(
                protocol, cases, factory, max_steps=WIDTH_STEPS, policy=BATCH
            )

        elapsed, report = median_time(kernel, REPEATS)
        assert len(report) == width
        times.append(elapsed)

    benchmark(
        lambda: run_sweep(
            protocol,
            population[: WIDTH_SIZES[-1]],
            factory,
            max_steps=WIDTH_STEPS,
            policy=BATCH,
        )
    )
    benchmark.extra["sizes"] = list(WIDTH_SIZES)
    benchmark.extra["times_s"] = times
    _ladder_table(
        f"A8: batch width scaling — {WIDTH_N}-node ring x"
        f" {WIDTH_STEPS} steps (median of {REPEATS})",
        "rows",
        WIDTH_SIZES,
        times,
    )
