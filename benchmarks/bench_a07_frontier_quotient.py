"""A7 — frontier-parallel exploration with symmetry quotient: K_7 capacity.

Acceptance gate for the quotiented exploration core
(:mod:`repro.stabilization.exploration` with ``symmetry="auto"`` plus the
level-synchronous batch frontier): the Example-1 **K_7 / r=4** states-graph
— 132,701 concrete (labeling, countdown) states, ~13s of concrete BFS on
the gating hardware class — must materialize as a symmetry quotient in
**under 10 seconds**, with the quotient covering at least **10x** more
concrete states than it stores (measured: ~475 stored states covering all
132,701, a ~280x reduction, in ~2.3s).

Both bounds ship as hard gates in the JSON record (``gates``), so
``check_regression.py`` re-enforces them on every subsequent run rather
than only on the PR that introduced them.  The second entry pins the
correctness anchor this speed rests on: on K_4, where the concrete graph is
still enumerable, the quotient's claimed coverage equals the concrete state
count exactly.
"""

from _runner import median_time

from repro import ExecutionPolicy
from repro.analysis import print_table
from repro.core import default_inputs
from repro.stabilization import (
    StatesGraph,
    broadcast_labelings,
    example1_protocol,
)

QUOTIENT = ExecutionPolicy(symmetry="auto")
GATE_N, GATE_R = 7, 4
GATE_SECONDS = 10.0
GATE_REDUCTION = 10.0
ANCHOR_N, ANCHOR_R = 4, 3
REPEATS = 3

BENCH_GATES = {
    "test_a07_k7_quotient_construction": {
        "max_kernel_median_s": GATE_SECONDS,
        "min": {"quotient_reduction_factor": GATE_REDUCTION},
    },
}


def test_a07_k7_quotient_construction(benchmark):
    protocol = example1_protocol(GATE_N)
    inputs = default_inputs(protocol)
    initials = list(broadcast_labelings(protocol.topology, protocol.label_space))

    def quotient_kernel():
        return StatesGraph(
            protocol, inputs, GATE_R, initials, policy=QUOTIENT
        )

    median, graph = median_time(quotient_kernel, REPEATS)
    stats = graph.stats()
    assert stats.symmetry_order == 5040  # S_7 verified equivariant

    print_table(
        f"A7: quotient states-graph — Example-1 K_{GATE_N}, r={GATE_R} "
        f"(median of {REPEATS})",
        [
            "stored states",
            "covered states",
            "reduction",
            "edges",
            "s / construction",
            "covered states/s",
        ],
        [
            [
                f"{stats.states:,}",
                f"{stats.covered_states:,}",
                f"{stats.reduction_factor:,.1f}x",
                f"{stats.edges:,}",
                f"{median:.2f}",
                f"{stats.covered_states / median:,.0f}",
            ]
        ],
    )

    assert median < GATE_SECONDS, (
        f"K_{GATE_N}/r={GATE_R} quotient took {median:.2f}s"
        f" (gate: {GATE_SECONDS}s)"
    )
    assert stats.reduction_factor >= GATE_REDUCTION, (
        f"quotient only {stats.reduction_factor:.1f}x smaller than its"
        f" concrete coverage (gate: {GATE_REDUCTION}x)"
    )

    benchmark.extra["states"] = stats.states
    benchmark.extra["covered_states"] = stats.covered_states
    benchmark.extra["quotient_reduction_factor"] = stats.reduction_factor
    benchmark.extra["symmetry_order"] = stats.symmetry_order
    benchmark.extra["edges"] = stats.edges
    benchmark(quotient_kernel)


def test_a07_quotient_coverage_anchor(benchmark):
    """K_4: quotient coverage must equal the enumerable concrete count."""
    protocol = example1_protocol(ANCHOR_N)
    inputs = default_inputs(protocol)
    initials = list(broadcast_labelings(protocol.topology, protocol.label_space))

    concrete = StatesGraph(protocol, inputs, ANCHOR_R, initials)

    def anchor_kernel():
        return StatesGraph(
            protocol, inputs, ANCHOR_R, initials, policy=QUOTIENT
        )

    graph = anchor_kernel()
    stats = graph.stats()
    assert stats.covered_states == len(concrete), (
        f"quotient claims {stats.covered_states} covered states,"
        f" concrete graph has {len(concrete)}"
    )

    print_table(
        f"A7: coverage anchor — Example-1 K_{ANCHOR_N}, r={ANCHOR_R}",
        ["concrete states", "quotient states", "covered", "reduction"],
        [
            [
                f"{len(concrete):,}",
                f"{stats.states:,}",
                f"{stats.covered_states:,}",
                f"{stats.reduction_factor:,.1f}x",
            ]
        ],
    )

    benchmark.extra["states"] = stats.states
    benchmark.extra["covered_states"] = stats.covered_states
    benchmark.extra["quotient_reduction_factor"] = stats.reduction_factor
    benchmark(anchor_kernel)
