"""E2 — Proposition 2.1: round complexity is at least the graph radius.

For the generic protocol (which computes a non-constant function), measured
output-convergence rounds must respect ``radius <= R_n``; the table reports
radius vs. worst measured rounds per topology.
"""

import random

from repro.analysis import print_table
from repro.core import Labeling, Simulator, SynchronousSchedule
from repro.graphs import (
    bidirectional_ring,
    binary_tree,
    clique,
    radius,
    star,
    unidirectional_ring,
)
from repro.power import generic_protocol


def _measure(topology, seed=0):
    rng = random.Random(seed)
    f = lambda bits: bits[0] ^ bits[-1]  # noqa: E731 (non-constant)
    protocol = generic_protocol(topology, f)
    worst = 0
    for _ in range(4):
        x = tuple(rng.randrange(2) for _ in range(topology.n))
        labeling = Labeling.random(topology, protocol.label_space, rng)
        report = Simulator(protocol, x).run(labeling, SynchronousSchedule(topology.n))
        assert report.label_stable
        worst = max(worst, report.output_rounds)
    return worst


def _experiment_rows():
    rows = []
    for topology in (
        unidirectional_ring(6),
        bidirectional_ring(7),
        clique(5),
        star(6),
        binary_tree(2),
    ):
        r = radius(topology)
        measured = _measure(topology)
        rows.append([topology.name, r, measured, measured >= r])
        assert measured >= r
    return rows


def test_e02_radius_lower_bound(benchmark):
    rows = _experiment_rows()
    print_table(
        "E2: Proposition 2.1 — paper: radius <= R_n for non-constant f",
        ["topology", "radius", "measured rounds", "radius <= measured"],
        rows,
    )
    topology = bidirectional_ring(7)
    benchmark(lambda: _measure(topology, seed=1))
