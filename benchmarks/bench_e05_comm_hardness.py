"""E5 — Theorem 4.1 (B.4/B.7): communication hardness of verification.

Regenerates the reduction dichotomies:
* EQ gadget (r = 1): stabilizing iff x != y;
* EQ latch gadget (general r): stabilizing iff x != y under every r-fair
  schedule;
* DISJ gadget: stabilizing iff the sets are disjoint; Claim B.8's explicit
  r-fair schedule oscillates for intersecting sets.

All verdicts are exact model checks over the full broadcast state space.
"""

from repro.analysis import print_table
from repro.core import RunOutcome, Simulator, default_inputs, minimal_fairness
from repro.hardness import (
    disj_gadget_protocol,
    disj_oscillating_schedule,
    disj_snake_labeling,
    eq_gadget_protocol,
    eq_latch_gadget_protocol,
    normalized_snake,
)
from repro.stabilization import broadcast_labelings, decide_label_r_stabilizing


def _verdict(protocol, r, budget=900_000):
    return decide_label_r_stabilizing(
        protocol,
        default_inputs(protocol),
        r,
        initial_labelings=broadcast_labelings(
            protocol.topology, protocol.label_space
        ),
        budget=budget,
    )


def _experiment_rows():
    rows = []
    # EQ gadget, r = 1
    for n in (5, 6):
        snake = normalized_snake(n - 2)
        x = tuple(k % 2 for k in range(len(snake)))
        for y, tag, expect in (
            (x, "x==y", False),
            (tuple(1 - b for b in x), "x!=y", True),
        ):
            verdict = _verdict(eq_gadget_protocol(n, x, y, snake), 1)
            rows.append(
                [f"EQ n={n}", tag, 1, verdict.stabilizing, expect,
                 verdict.states_explored]
            )
            assert verdict.stabilizing == expect

    # EQ latch gadget, r = 2
    snake = normalized_snake(3)
    segments = (len(snake) + 5) // 6
    for y, tag, expect in (
        ((1,) * segments, "x==y", False),
        ((0,) * segments, "x!=y", True),
    ):
        verdict = _verdict(
            eq_latch_gadget_protocol(7, (1,) * segments, y, 2, snake), 2
        )
        rows.append(
            ["EQ-latch n=7", tag, 2, verdict.stabilizing, expect,
             verdict.states_explored]
        )
        assert verdict.stabilizing == expect

    # DISJ gadget, r = 4
    snake = normalized_snake(3)
    for x, y, tag, expect in (
        ((1, 0), (1, 1), "intersecting", False),
        ((1, 0), (0, 1), "disjoint", True),
        ((0, 1), (0, 1), "intersecting", False),
        ((0, 0), (1, 1), "disjoint", True),
    ):
        verdict = _verdict(disj_gadget_protocol(5, x, y, snake), 4)
        rows.append(
            [f"DISJ n=5 {x}/{y}", tag, 4, verdict.stabilizing, expect,
             verdict.states_explored]
        )
        assert verdict.stabilizing == expect
    return rows


def test_e05_comm_hardness(benchmark):
    rows = _experiment_rows()
    print_table(
        "E5: Theorem 4.1 — paper: stabilization verdict encodes EQ/DISJ "
        "of the hidden inputs",
        ["gadget", "inputs", "r", "stabilizing", "expected", "states"],
        rows,
    )

    # Claim B.8's explicit oscillating schedule
    snake = normalized_snake(3)
    protocol = disj_gadget_protocol(5, (1, 0), (1, 1), snake)
    schedule = disj_oscillating_schedule(5, snake, q=2, element=0)
    report = Simulator(protocol, default_inputs(protocol)).run(
        disj_snake_labeling(5, snake, 0), schedule, max_steps=3000
    )
    print(
        f"\nClaim B.8 schedule: fairness r = {minimal_fairness(schedule, 300)},"
        f" outcome = {report.outcome.value}"
    )
    assert report.outcome is RunOutcome.OSCILLATING

    snake6 = normalized_snake(4)
    x = tuple(k % 2 for k in range(len(snake6)))
    protocol = eq_gadget_protocol(6, x, x, snake6)
    benchmark(lambda: _verdict(protocol, 1).stabilizing)
