"""E7 — Claim 5.5: the self-stabilizing 2-counter on odd rings.

Paper: on every odd bidirectional ring there is a stateless protocol whose
b2 bit, after O(n) rounds, alternates at every node every round (the global
phase clock).  The bench measures stabilization time vs. the 4n bound across
ring sizes and seeds.
"""

import random

from repro.analysis import print_table
from repro.core import Labeling, Simulator, SynchronousSchedule
from repro.power import two_counter_protocol


def _stabilization_time(n, seed):
    protocol = two_counter_protocol(n)
    rng = random.Random(seed)
    labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
    simulator = Simulator(protocol, (0,) * n)
    trace = simulator.run_trace(labeling, SynchronousSchedule(n), 4 * n + 12)
    rows = [config.outputs for config in trace[1:]]
    horizon = len(rows)
    for start in range(horizon - 1):
        if all(
            rows[t + 1][j] == 1 - rows[t][j]
            for t in range(start, horizon - 1)
            for j in range(n)
        ):
            return start
    return None


def _experiment_rows():
    rows = []
    for n in (3, 5, 7, 9, 11):
        worst = 0
        for seed in range(8):
            t = _stabilization_time(n, seed)
            assert t is not None
            worst = max(worst, t)
        rows.append([n, worst, 4 * n, worst <= 4 * n])
        assert worst <= 4 * n
    return rows


def test_e07_two_counter(benchmark):
    rows = _experiment_rows()
    print_table(
        "E7: Claim 5.5 — paper: 2-counter stabilizes (phase bit alternates "
        "everywhere) within O(n); measured vs 4n",
        ["ring size n", "measured worst stabilization", "4n", "holds"],
        rows,
    )
    benchmark(lambda: _stabilization_time(7, 0))
