"""E8 — Claim 5.6: the self-stabilizing D-counter on odd rings.

Paper: R_n = 4n rounds to reach the regime where all nodes hold the same
counter value incrementing mod D every round; L_n = 2 + 3 log2(D).  The
bench measures stabilization over an (n, D) grid and reports label
complexity against the paper's formula.
"""

import random

from repro.analysis import print_table
from repro.core import Labeling, Simulator, SynchronousSchedule
from repro.power import d_counter_label_complexity, d_counter_protocol


def _sync_time(n, modulus, seed):
    protocol = d_counter_protocol(n, modulus)
    rng = random.Random(seed)
    labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
    simulator = Simulator(protocol, (0,) * n)
    trace = simulator.run_trace(
        labeling, SynchronousSchedule(n), 4 * n + 2 * modulus + 10
    )
    rows = [config.outputs for config in trace[1:]]
    horizon = len(rows)
    for start in range(horizon - 1):
        good = True
        for t in range(start, horizon - 1):
            if len(set(rows[t])) != 1 or rows[t + 1][0] != (rows[t][0] + 1) % modulus:
                good = False
                break
        if good:
            return start
    return None


def _experiment_rows():
    rows = []
    for n in (3, 5, 7, 9):
        for modulus in (4, 16, 64):
            worst = 0
            for seed in range(4):
                t = _sync_time(n, modulus, seed)
                assert t is not None
                worst = max(worst, t)
            protocol = d_counter_protocol(n, modulus)
            rows.append(
                [
                    n,
                    modulus,
                    worst,
                    4 * n,
                    worst <= 4 * n,
                    f"{protocol.label_complexity:.1f}",
                    f"{d_counter_label_complexity(modulus):.1f}",
                ]
            )
            assert worst <= 4 * n
    return rows


def test_e08_d_counter(benchmark):
    rows = _experiment_rows()
    print_table(
        "E8: Claim 5.6 — paper: D-counter synchronizes within R_n = 4n; "
        "L_n = 2 + 3 log2(D)",
        ["n", "D", "measured sync time", "4n", "holds", "measured bits",
         "paper bits"],
        rows,
    )
    benchmark(lambda: _sync_time(7, 16, 0))
