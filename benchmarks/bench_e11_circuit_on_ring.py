"""E11 — Theorem 5.4: Boolean circuits on the bidirectional ring.

Compiles standard circuits to ring protocols and measures, from random
initial labelings: correctness on every input, output settling time vs the
polynomial bound, and the O(log D) label complexity.
"""

import math
import random
from itertools import product

from repro.analysis import output_settle_time
from repro.analysis.tables import print_table
from repro.core import Labeling
from repro.power import RingCircuitLayout, circuit_ring_protocol, ring_inputs
from repro.substrates.circuits import (
    and_circuit,
    equality_circuit,
    or_circuit,
    parity_circuit,
)


def _measure(name, circuit, seed=0):
    layout = RingCircuitLayout(circuit)
    protocol = circuit_ring_protocol(circuit)
    rng = random.Random(seed)
    horizon = layout.round_bound()
    worst = 0
    for x in product((0, 1), repeat=circuit.n_inputs):
        labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
        settle, outputs = output_settle_time(
            protocol,
            ring_inputs(layout, x),
            labeling,
            horizon=horizon,
            window=layout.modulus,
        )
        assert set(outputs) == {circuit.evaluate(x)}
        worst = max(worst, settle)
    return [
        name,
        circuit.n_inputs,
        layout.m,
        layout.ring_size,
        layout.modulus,
        f"{protocol.label_complexity:.1f}",
        f"{2 * math.log2(layout.modulus) + 6:.1f}",
        worst,
        horizon,
    ]


def _experiment_rows():
    return [
        _measure("and2", and_circuit(2)),
        _measure("or3", or_circuit(3)),
        _measure("parity3", parity_circuit(3)),
        _measure("equality4", equality_circuit(4)),
    ]


def test_e11_circuit_on_ring(benchmark):
    rows = _experiment_rows()
    print_table(
        "E11: Theorem 5.4 — paper: circuit evaluated on the ring with "
        "O(log) labels and polynomial rounds, from any initial labeling",
        [
            "circuit",
            "inputs",
            "gates",
            "ring N",
            "D",
            "measured bits",
            "2log2(D)+6",
            "worst settle",
            "round bound",
        ],
        rows,
    )

    circuit = and_circuit(2)
    layout = RingCircuitLayout(circuit)
    protocol = circuit_ring_protocol(circuit)
    labeling = Labeling.random(
        protocol.topology, protocol.label_space, random.Random(42)
    )

    def kernel():
        settle, outputs = output_settle_time(
            protocol,
            ring_inputs(layout, (1, 1)),
            labeling,
            horizon=layout.round_bound(),
            window=layout.modulus,
        )
        return set(outputs)

    assert benchmark(kernel) == {1}
