"""Benchmark-regression gate: fresh BENCH records vs the committed ones.

Compares every ``benchmarks/BENCH_*.json`` in the working tree against the
version committed at ``HEAD`` (via ``git show``) and fails when any entry's
throughput regressed by more than the threshold (default 30%).  Records
without a committed counterpart are reported as new and pass; records whose
files were not regenerated compare equal and pass trivially, so the gate can
run after a partial benchmark smoke.

The throughput metric is ``steps_per_s`` when both versions carry it,
otherwise ``1 / kernel_median_s``.

Records may also carry hard acceptance ``gates`` (declared by the bench
module via ``BENCH_GATES`` and copied into the JSON by the runner):
absolute ceilings on ``kernel_median_s`` and floors on arbitrary entry
fields.  Unlike the relative regression check, gates fail regardless of
what the committed baseline says — they encode the acceptance criteria a
feature shipped under.

Two further passes ride along:

* **Coverage** (unfiltered runs only): every ``bench_*.py`` module must
  have a committed ``BENCH_*.json`` record or an entry in
  :data:`UNRECORDED_EXEMPT` — an unrecorded bench is invisible to every
  other pass, so going unrecorded must be an explicit, reviewed decision.
* **Complexity** (when sympy is importable): records carrying measured
  ``sizes`` / ``times_s`` scaling ladders are re-fitted against the
  symbolic cost model's candidate classes
  (:mod:`repro.analysis.costmodel`), and a fitted class growing faster
  than the class the entry shipped under fails — including in ``history``
  snapshots, so a slow drift cannot hide behind a fresh baseline.

Absolute throughput is machine-dependent, so the committed baselines must
come from the hardware class that runs the gate.  If the gate reds out on
every push with no performance-relevant diff, re-record the baselines on the
gating hardware: take the fresh ``BENCH_*.json`` from the CI job's uploaded
artifacts (or rerun ``python benchmarks/_runner.py``) and commit them.

A commit that regenerates its own baselines compares fresh records against
identical committed ones and passes trivially — so baseline re-records
should be reviewed as such, and pull-request pipelines can pin the baseline
to the merge base instead:
``--baseline "$(git merge-base HEAD origin/main)"``.

Usage:
    python benchmarks/check_regression.py                # all records
    python benchmarks/check_regression.py a02 a05        # substring filter
    python benchmarks/check_regression.py --threshold 0.5
    python benchmarks/check_regression.py --baseline origin/main
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

# Make `repro` importable for the complexity pass without PYTHONPATH=src.
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

try:
    from repro.analysis.costmodel import failures_for_record
except ImportError:  # pragma: no cover - sympy is present in CI
    failures_for_record = None

#: Bench modules allowed to have no committed ``BENCH_*.json`` record.
#: Every other ``bench_*.py`` must be recorded — an unrecorded bench is
#: invisible to this gate, which is exactly how the a01 blind spot
#: happened.  The e-series modules are *evidence* benches: they print the
#: paper-claim tables for humans and assert correctness inline, but their
#: timings gate nothing, so recording them would only add churn.  Adding a
#: module here is a reviewed statement that its performance is
#: deliberately ungated.
UNRECORDED_EXEMPT = frozenset(
    f"bench_e{index:02d}_" for index in range(1, 16)
)


def record_coverage_failures() -> list[str]:
    """Bench modules that are neither recorded nor explicitly exempted."""
    failures = []
    for path in sorted(BENCH_DIR.glob("bench_*.py")):
        if (BENCH_DIR / f"BENCH_{path.stem}.json").exists():
            continue
        if any(path.stem.startswith(prefix) for prefix in UNRECORDED_EXEMPT):
            continue
        failures.append(
            f"{path.name}: no committed BENCH_{path.stem}.json and not in"
            f" UNRECORDED_EXEMPT — run `python benchmarks/_runner.py"
            f" {path.stem.removeprefix('bench_')[:3]}` and commit the"
            f" record, or exempt the module with a justification"
        )
    return failures


def committed_record(path: Path, baseline: str = "HEAD") -> dict | None:
    """The baseline version of a benchmark record, or None when absent."""
    relative = path.relative_to(REPO_ROOT).as_posix()
    result = subprocess.run(
        ["git", "show", f"{baseline}:{relative}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError:
        return None


def common_throughput(
    fresh: dict, committed: dict
) -> tuple[float, float, str] | None:
    """Fresh and committed throughput on a metric both entries carry."""
    if fresh.get("steps_per_s") and committed.get("steps_per_s"):
        return (
            float(fresh["steps_per_s"]),
            float(committed["steps_per_s"]),
            "steps/s",
        )
    if fresh.get("kernel_median_s") and committed.get("kernel_median_s"):
        return (
            1.0 / float(fresh["kernel_median_s"]),
            1.0 / float(committed["kernel_median_s"]),
            "1/kernel_s",
        )
    return None


def compare(fresh: dict, committed: dict, threshold: float) -> list[tuple]:
    """Rows ``(entry, metric, committed, fresh, ratio, verdict)``."""
    rows = []
    committed_entries = committed.get("entries", {})
    for name, entry in fresh.get("entries", {}).items():
        old = committed_entries.get(name)
        if old is None:
            rows.append((name, "-", None, None, None, "new entry"))
            continue
        metrics = common_throughput(entry, old)
        if metrics is None:
            rows.append((name, "-", None, None, None, "no common metric"))
            continue
        new_value, old_value, metric = metrics
        ratio = new_value / old_value
        verdict = "ok" if ratio >= 1.0 - threshold else "REGRESSED"
        rows.append((name, metric, old_value, new_value, ratio, verdict))
    return rows


def gate_failures(record: dict) -> list[str]:
    """Hard-gate violations in a fresh record (empty when all gates hold)."""
    failures = []
    for name, gate in (record.get("gates") or {}).items():
        entry = record.get("entries", {}).get(name)
        if entry is None:
            failures.append(f"{name}: gated entry missing from record")
            continue
        ceiling = gate.get("max_kernel_median_s")
        if ceiling is not None:
            value = entry.get("kernel_median_s")
            if value is None or float(value) > float(ceiling):
                failures.append(
                    f"{name}: kernel_median_s {value} exceeds gate"
                    f" ceiling {ceiling}s"
                )
        for field, floor in (gate.get("min") or {}).items():
            value = entry.get(field)
            if value is None or float(value) < float(floor):
                failures.append(
                    f"{name}: {field} {value} below gate floor {floor}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "patterns", nargs="*", help="substring filters on record names"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated throughput loss (fraction, default 0.30)",
    )
    parser.add_argument(
        "--baseline",
        default="HEAD",
        help="git ref to read the committed records from (default HEAD)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        parser.error("--threshold must lie in [0, 1)")

    records = sorted(BENCH_DIR.glob("BENCH_*.json"))
    if args.patterns:
        records = [
            path
            for path in records
            if any(pattern in path.stem for pattern in args.patterns)
        ]
    if not records:
        print("no benchmark records found")
        return 0

    failures = []
    if not args.patterns:
        # Coverage: every bench module must be recorded or exempted (only
        # meaningful unfiltered — a substring run sees a partial universe).
        for violation in record_coverage_failures():
            line = f"{violation} COVERAGE FAILED"
            print(line)
            failures.append(line)
    for path in records:
        fresh = json.loads(path.read_text())
        for violation in gate_failures(fresh):
            line = f"{path.name} :: {violation} GATE FAILED"
            print(line)
            failures.append(line)
        if failures_for_record is not None:
            for violation in failures_for_record(fresh):
                line = f"{path.name} :: {violation} COMPLEXITY FAILED"
                print(line)
                failures.append(line)
        committed = committed_record(path, args.baseline)
        if committed is None:
            print(f"{path.name}: no committed baseline (new record) — ok")
            continue
        for name, metric, old, new, ratio, verdict in compare(
            fresh, committed, args.threshold
        ):
            if old is None:
                print(f"{path.name} :: {name}: {verdict}")
                continue
            line = (
                f"{path.name} :: {name}: {old:,.0f} -> {new:,.0f} {metric}"
                f" ({ratio:.2f}x) {verdict}"
            )
            print(line)
            if verdict == "REGRESSED":
                failures.append(line)

    if failures:
        print(
            f"\n{len(failures)} benchmark entr"
            f"{'y' if len(failures) == 1 else 'ies'} regressed more than"
            f" {args.threshold:.0%}, failed a hard/complexity gate, or"
            f" lack a committed record:"
        )
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"\nall benchmark records within {args.threshold:.0%}"
        f" of {args.baseline}, within their hard and complexity gates,"
        f" and every bench module recorded or exempted"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
