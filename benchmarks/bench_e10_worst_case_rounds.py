"""E10 — Lemma C.2: round complexity on the unidirectional ring.

Paper: R_n <= n |Sigma| for every protocol, and the counter-to-saturation
protocol achieves R_n = n(|Sigma|-1) exactly.  The bench measures the
protocol's convergence time over an (n, q) grid.
"""

from repro.analysis import print_table
from repro.core import Labeling, Simulator, SynchronousSchedule
from repro.power import (
    unidirectional_round_bound,
    worst_case_protocol,
    worst_case_round_complexity,
)


def _measure(n, q):
    protocol = worst_case_protocol(n, q)
    labeling = Labeling.uniform(protocol.topology, 0)
    report = Simulator(protocol, (0,) * n).run(
        labeling, SynchronousSchedule(n), max_steps=n * q + 20
    )
    assert report.label_stable
    return report.label_rounds


def _experiment_rows():
    rows = []
    for n in (3, 4, 6, 8):
        for q in (2, 3, 5):
            measured = _measure(n, q)
            predicted = worst_case_round_complexity(n, q)
            rows.append(
                [
                    n,
                    q,
                    measured,
                    predicted,
                    unidirectional_round_bound(n, q),
                    measured == predicted,
                ]
            )
            assert measured == predicted
    return rows


def test_e10_worst_case_rounds(benchmark):
    rows = _experiment_rows()
    print_table(
        "E10: Lemma C.2 — paper: R_n = n(q-1) exactly; upper bound n*q",
        ["n", "q = |Sigma|", "measured R_n", "paper n(q-1)", "bound n*q",
         "exact match"],
        rows,
    )
    benchmark(lambda: _measure(6, 5))
