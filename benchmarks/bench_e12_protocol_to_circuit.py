"""E12 — Theorem 5.4, converse: unrolling protocols into circuits.

Random small protocols are unrolled into layered Boolean circuits; the
circuit must agree with the engine on every input, and its size must scale
linearly with rounds x nodes (the P/poly containment).
"""

import random
from itertools import product

from repro.analysis import print_table
from repro.core import (
    Labeling,
    Simulator,
    StatelessProtocol,
    SynchronousSchedule,
    TabularReaction,
    binary,
)
from repro.graphs import unidirectional_ring
from repro.power import unroll_protocol


def _random_protocol(n, seed):
    rng = random.Random(seed)
    topology = unidirectional_ring(n)
    reactions = []
    for i in range(n):
        table = {}
        for label in (0, 1):
            for x in (0, 1):
                table[((label,), x)] = ((rng.randrange(2),), rng.randrange(2))
        reactions.append(
            TabularReaction(topology.in_edges(i), topology.out_edges(i), table)
        )
    return StatelessProtocol(topology, binary(), reactions, name=f"random({seed})")


def _agreement(protocol, rounds, node):
    circuit = unroll_protocol(protocol, rounds, node=node)
    initial = Labeling.uniform(protocol.topology, 0)
    n = protocol.n
    matches = 0
    total = 0
    for x in product((0, 1), repeat=n):
        trace = Simulator(protocol, x).run_trace(
            initial, SynchronousSchedule(n), rounds
        )
        total += 1
        if circuit.evaluate(x) == trace[rounds].outputs[node]:
            matches += 1
    return circuit, matches, total


def _experiment_rows():
    rows = []
    for seed in (0, 1, 2):
        for rounds in (2, 5, 8):
            protocol = _random_protocol(3, seed)
            circuit, matches, total = _agreement(protocol, rounds, node=0)
            rows.append(
                [seed, rounds, circuit.size, f"{matches}/{total}"]
            )
            assert matches == total
    return rows


def test_e12_protocol_to_circuit(benchmark):
    rows = _experiment_rows()
    print_table(
        "E12: Theorem 5.4 converse — paper: protocol runs unroll to circuits "
        "of size poly(T*n)",
        ["protocol seed", "rounds T", "circuit size", "agreement"],
        rows,
    )
    # circuit size grows linearly in T (same per-layer cost)
    sizes = {}
    for rounds in (2, 5, 8):
        protocol = _random_protocol(3, 0)
        circuit, _, _ = _agreement(protocol, rounds, 0)
        sizes[rounds] = circuit.size
    per_layer_a = (sizes[5] - sizes[2]) / 3
    per_layer_b = (sizes[8] - sizes[5]) / 3
    assert per_layer_a == per_layer_b  # constant per-layer growth

    protocol = _random_protocol(3, 7)
    benchmark(lambda: unroll_protocol(protocol, 5, node=0).size)
