"""Price a sweep before running it: the cost model as a capacity planner.

The symbolic cost model (`repro.analysis.costmodel`) prices a sweep from
its shape alone — node count, in-degree, step budget, case count — in the
model's *work units* (elementary node activations).  The service layer
grounds that price in a concrete plan and a concrete cache
(`repro.service.predict_plan_cost`), and an `AdmissionPolicy` turns it
into an enforced budget: over-budget plans are rejected (or held) *before*
any simulation runs.

This example walks the full loop:

1. build a sweep plan and predict its cold cost;
2. submit it to a budgeted service and watch admission reject it;
3. warm the cache through an unbudgeted service;
4. resubmit — the same plan, repriced against the warm cache, now fits;
5. compare the prediction against the measured wall time.

Requires sympy (the ``repro[costmodel]`` extra).

Run:  python examples/capacity_planning.py
"""

import random
import time

from repro import ExecutionPolicy
from repro.analysis import SweepCase
from repro.core import (
    Labeling,
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
)
from repro.exceptions import JobError
from repro.graphs import unidirectional_ring
from repro.service import (
    AdmissionPolicy,
    InMemoryCache,
    SweepService,
    plan_sweep,
    predict_plan_cost,
)


def _forward_bit(incoming, _x):
    (value,) = incoming.values()
    return value, value


def build_plan(n=8, cases=64, max_steps=120):
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _forward_bit) for i in range(n)
    ]
    protocol = StatelessProtocol(topology, binary(), reactions, name="ring")
    rng = random.Random(0)
    population = [
        SweepCase(
            (0,) * n,
            Labeling(topology, tuple(rng.randrange(2) for _ in range(n))),
            tag=k,
        )
        for k in range(cases)
    ]
    return plan_sweep(
        protocol,
        population,
        lambda i, c: SynchronousSchedule(n),
        max_steps=max_steps,
    )


def main() -> None:
    plan = build_plan()
    policy = ExecutionPolicy()  # serial engine; try executor="batch"

    # -- 1: predict ----------------------------------------------------------
    cold = predict_plan_cost(plan, policy)
    print(f"plan: {plan.describe()}")
    print(f"cold estimate: {cold.describe()}")

    # -- 2: a budget the cold plan cannot meet -------------------------------
    # Budget between the warm price (every case a cache hit) and the cold
    # price, so the *same* plan is refused cold and admitted warm.
    budget = AdmissionPolicy(max_work=cold.predicted_work / 2)
    print(f"budget: {budget.describe()}")

    cache = InMemoryCache()
    with SweepService(cache=cache, admission=budget) as service:
        rejected = service.submit(plan)
        status = service.status(rejected)
        print(f"cold submission -> {status.state.value}")
        try:
            service.result(rejected, timeout=5)
        except JobError as error:
            print(f"  {error}")

        # -- 3: warm the cache through an unbudgeted service -----------------
        started = time.perf_counter()
        with SweepService(cache=cache) as warmup:
            report = warmup.result(warmup.submit(plan, policy=policy))
        measured = time.perf_counter() - started
        print(
            f"warmup run: {report.describe()}"
            f"\n  measured {measured:.3f}s vs predicted"
            f" ~{cold.predicted_seconds:.3f}s (coarse calibration constants)"
        )

        # -- 4: the identical plan now fits the budget -----------------------
        warm = predict_plan_cost(plan, policy, cache=cache)
        print(
            f"warm estimate: {warm.describe()}"
            f"\n  cache discount: {warm.cache_discount:.1%}"
        )
        admitted = service.submit(plan, policy=policy)
        served = service.result(admitted, timeout=60)
        status = service.status(admitted)
        print(f"warm submission -> {status.state.value}")
        assert served == report, "cache-served report differs from computed"
        print("cache-served report identical to the computed one")


if __name__ == "__main__":
    main()
