"""Regenerate the committed example plan pickles.

The ``.pkl`` files next to this script are the inputs of the CI ``statics``
job: ``python -m repro.statics examples/plans/PLAN_*.pkl`` preflights each
one (predicted batch partition, fingerprint-safety, purity verdicts) on
every push, so the preflight CLI is exercised against real, committed
plans — not just unit-test fixtures.

Everything in these plans is picklable *by value or by library reference*:
:class:`~repro.core.reaction.TabularReaction` tables instead of function
references, :class:`~repro.core.SynchronousSchedule` instances, seeded
labelings.  That keeps the pickles loadable from any process that can
import ``repro`` — no dependency on this script being importable.

Run from the repository root::

    PYTHONPATH=src python examples/plans/regenerate.py
"""

import pickle
import random
from itertools import product
from pathlib import Path

from repro.analysis import SweepCase
from repro.core import Labeling, StatelessProtocol, SynchronousSchedule
from repro.core.labels import ExplicitLabelSpace, binary
from repro.core.reaction import TabularReaction
from repro.faults.schedules import NoFaults
from repro.graphs import unidirectional_ring
from repro.graphs.standard import clique
from repro.service import plan_resilience_sweep, plan_sweep

HERE = Path(__file__).parent


def copy_ring(n):
    """A ring where every node forwards the bit it receives."""
    topology = unidirectional_ring(n)
    reactions = []
    for i in range(n):
        in_edges = topology.in_edges(i)
        out_edges = topology.out_edges(i)
        table = {
            ((bit,), x): ((bit,) * len(out_edges), bit)
            for bit in (0, 1)
            for x in (0, 1)
        }
        reactions.append(TabularReaction(in_edges, out_edges, table))
    return StatelessProtocol(topology, binary(), reactions, name="copy-ring")


def majority_clique(n, k):
    """A clique whose nodes broadcast the most common incoming label."""
    topology = clique(n)
    space = ExplicitLabelSpace(tuple(range(k)), name=f"mod{k}")
    reactions = []
    for i in range(n):
        in_edges = topology.in_edges(i)
        out_edges = topology.out_edges(i)
        table = {}
        for combo in product(range(k), repeat=len(in_edges)):
            winner = max(set(combo), key=lambda v: (combo.count(v), -v))
            table[(combo, 0)] = ((winner,) * len(out_edges), winner)
        reactions.append(TabularReaction(in_edges, out_edges, table))
    return StatelessProtocol(topology, space, reactions, name="majority-clique")


def _cases(protocol, count, seed):
    rng = random.Random(seed)
    return [
        SweepCase(
            (0,) * protocol.n,
            Labeling.random(protocol.topology, protocol.label_space, rng),
            tag=index,
        )
        for index in range(count)
    ]


def _sync(index, case):
    return SynchronousSchedule(len(case.inputs))


def _no_faults(index, case):
    return NoFaults()


def main():
    ring = copy_ring(4)
    sweep = plan_sweep(
        ring, _cases(ring, count=6, seed=11), _sync, max_steps=40,
        preflight=True,
    )
    (HERE / "PLAN_copy_ring_sweep.pkl").write_bytes(pickle.dumps(sweep))

    maj = majority_clique(4, 3)
    resilience = plan_resilience_sweep(
        maj, _cases(maj, count=4, seed=17), _sync, _no_faults, max_steps=40,
        preflight=True,
    )
    (HERE / "PLAN_majority_resilience.pkl").write_bytes(
        pickle.dumps(resilience)
    )

    for path in sorted(HERE.glob("PLAN_*.pkl")):
        print(f"{path.name}: {len(path.read_bytes())} bytes")


if __name__ == "__main__":
    main()
