"""Theorem 5.4 in action: evaluating a Boolean circuit on a bidirectional ring.

A majority-of-3 circuit is compiled into a stateless protocol: input nodes,
one compute/memory node pair per gate, a self-stabilizing D-counter as the
global clock, clockwise operand streams, and a ping-pong gate memory.  From a
*random* initial labeling the ring's outputs converge to the circuit value.

Run:  python examples/circuit_on_ring.py
"""

import random

from repro.analysis import output_settle_time
from repro.core import Labeling, Simulator, SynchronousSchedule
from repro.power import (
    RingCircuitLayout,
    circuit_ring_protocol,
    d_counter_protocol,
    ring_inputs,
)
from repro.substrates.circuits import majority_circuit


def main() -> None:
    # -- the clock alone -----------------------------------------------------
    print("the Claim 5.6 D-counter on a 7-ring, D = 10:")
    counter = d_counter_protocol(7, 10)
    simulator = Simulator(counter, (0,) * 7)
    rng = random.Random(0)
    labeling = Labeling.random(counter.topology, counter.label_space, rng)
    trace = simulator.run_trace(labeling, SynchronousSchedule(7), steps=40)
    for t in (1, 10, 34, 35, 36):
        print(f"  t={t:>2}: node counter values = {trace[t].outputs}")
    print("  (synchronized and incrementing mod 10 after ~4n rounds)\n")

    # -- the compiled circuit -------------------------------------------------
    circuit = majority_circuit(3)
    layout = RingCircuitLayout(circuit)
    protocol = circuit_ring_protocol(circuit)
    print(f"majority-of-3 circuit: {circuit.size} gates "
          f"({layout.m} non-trivial)")
    print(f"ring size N = {layout.ring_size}, counter modulus D = {layout.modulus}")
    print(f"label complexity = {protocol.label_complexity:.1f} bits "
          f"(O(log D))\n")

    horizon = layout.round_bound()
    for x in ((0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0), (0, 1, 0)):
        labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
        settle, outputs = output_settle_time(
            protocol,
            ring_inputs(layout, x),
            labeling,
            horizon=horizon,
            window=layout.modulus,
        )
        expected = circuit.evaluate(x)
        status = "ok" if set(outputs) == {expected} else "MISMATCH"
        print(
            f"  x={x}: circuit={expected} ring output={set(outputs)}"
            f" settled at t={settle} (bound {horizon})  [{status}]"
        )


if __name__ == "__main__":
    main()
