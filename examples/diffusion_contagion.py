"""Diffusion of technologies in a social network (Morris contagion).

Agents adopt technology A when at least a fraction theta of their neighbors
did.  The dynamics are a stateless protocol; the paper's Theorem 3.1 applies
because all-A and all-B are both stable.  This example shows (1) the
threshold at which a two-agent seed conquers a ring, (2) the same on a torus,
and (3) the instability of the dynamics under (n-1)-fair activation.

Run:  python examples/diffusion_contagion.py
"""

from repro.core import Simulator, SynchronousSchedule, default_inputs
from repro.dynamics import adoption_counts, contagion_protocol, seeded_labeling
from repro.graphs import bidirectional_ring, torus
from repro.stabilization import broadcast_labelings, decide_label_r_stabilizing


def spread(topology, theta, seeds):
    protocol = contagion_protocol(topology, theta)
    labeling = seeded_labeling(topology, seeds)
    report = Simulator(protocol, default_inputs(protocol)).run(
        labeling, SynchronousSchedule(topology.n), max_steps=5000
    )
    return adoption_counts(report.outputs), report


def main() -> None:
    ring = bidirectional_ring(12)
    print("contagion on a 12-ring, seed = {0, 1}:")
    for theta in (0.3, 0.5, 0.6, 0.9):
        adopters, report = spread(ring, theta, {0, 1})
        print(
            f"  theta={theta}: {adopters}/12 adopters"
            f" ({report.outcome.value}, rounds={report.output_rounds})"
        )
    print("  (theta <= 1/2: full contagion; above: the seed dies out)\n")

    grid = torus(3, 4)
    print("contagion on a 3x4 torus, seed = one row {0,1,2,3}:")
    for theta in (0.5, 0.75):
        adopters, report = spread(grid, theta, {0, 1, 2, 3})
        print(f"  theta={theta}: {adopters}/12 adopters ({report.outcome.value})")
    print()

    small = bidirectional_ring(4)
    protocol = contagion_protocol(small, theta=0.5)
    verdict = decide_label_r_stabilizing(
        protocol,
        default_inputs(protocol),
        3,
        initial_labelings=broadcast_labelings(
            protocol.topology, protocol.label_space
        ),
    )
    print(
        "Theorem 3.1 corollary on the 4-ring:"
        f" label 3-stabilizing? {verdict.stabilizing}"
    )
    print("  -> a technology war can flap forever under (n-1)-fair timing")


if __name__ == "__main__":
    main()
