"""Why verifying self-stabilization is hard (Section 4), executably.

Deciding label r-stabilization is PSPACE-complete and needs exponential
communication; the paper proves both via gadget reductions.  This example
runs the actual gadgets:

1. the EQUALITY gadget — whether the protocol stabilizes encodes whether two
   hidden strings are equal (so Alice and Bob must essentially exchange them);
2. the DISJOINTNESS gadget with its explicit r-fair oscillating schedule;
3. the String-Oscillation reduction through a stateful protocol and the
   metanode compiler back to a stateless one.

Run:  python examples/verify_stabilization.py
"""

from repro.core import (
    RoundRobinSchedule,
    Simulator,
    SynchronousSchedule,
    default_inputs,
    minimal_fairness,
)
from repro.hardness import (
    disj_gadget_protocol,
    disj_oscillating_schedule,
    disj_snake_labeling,
    eq_gadget_protocol,
    eq_snake_labeling,
    expand_inputs,
    expand_labeling,
    halt_unless_all_b,
    metanode_compile,
    normalized_snake,
    oscillating_start,
    procedure_labeling,
    stateful_protocol_from_g,
)
from repro.stabilization import broadcast_labelings, decide_label_r_stabilizing


def main() -> None:
    # -- EQ gadget -----------------------------------------------------------
    n = 6
    snake = normalized_snake(n - 2)
    print(f"EQ gadget on K_{n}: snake of length {len(snake)} in Q_{n - 2}")
    x = tuple(k % 2 for k in range(len(snake)))
    for y, tag in ((x, "x == y"), (tuple(1 - b for b in x), "x != y")):
        protocol = eq_gadget_protocol(n, x, y, snake)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            1,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        print(f"  {tag}: label 1-stabilizing? {verdict.stabilizing}")
    protocol = eq_gadget_protocol(n, x, x, snake)
    report = Simulator(protocol, default_inputs(protocol)).run(
        eq_snake_labeling(n, snake, 0, x[0]),
        SynchronousSchedule(n),
        max_steps=500,
    )
    print(f"  x == y run from a snake state: {report.describe()}")
    print("  => deciding stabilization decides EQUALITY of the hidden inputs\n")

    # -- DISJ gadget ----------------------------------------------------------
    n, q = 5, 2
    snake = normalized_snake(n - 2)
    print(f"DISJ gadget on K_{n} (q = {q}, r = {2 * q}):")
    for x, y, tag in (
        ((1, 0), (1, 1), "intersecting"),
        ((1, 0), (0, 1), "disjoint"),
    ):
        protocol = disj_gadget_protocol(n, x, y, snake)
        verdict = decide_label_r_stabilizing(
            protocol,
            default_inputs(protocol),
            2 * q,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
            budget=900_000,
        )
        print(f"  {tag}: label {2 * q}-stabilizing? {verdict.stabilizing}")
    protocol = disj_gadget_protocol(n, (1, 0), (1, 1), snake)
    schedule = disj_oscillating_schedule(n, snake, q, element=0)
    report = Simulator(protocol, default_inputs(protocol)).run(
        disj_snake_labeling(n, snake, 0), schedule, max_steps=2000
    )
    print(
        f"  Claim B.8 schedule (fairness r = {minimal_fairness(schedule, 200)}):"
        f" {report.describe()}\n"
    )

    # -- PSPACE reduction ------------------------------------------------------
    print("String-Oscillation -> stateful protocol -> metanode compiler:")
    g = halt_unless_all_b
    witness = oscillating_start(g, ("a", "b"), 2)
    print(f"  procedure loops from T = {witness}")
    stateful = stateful_protocol_from_g(g, ("a", "b"), 2)
    report = Simulator(stateful, default_inputs(stateful)).run(
        procedure_labeling(stateful, g, witness),
        RoundRobinSchedule(stateful.n),
        max_steps=2000,
    )
    print(f"  stateful protocol from that string: {report.describe()}")
    compiled = metanode_compile(stateful)
    print(f"  metanode compile: {stateful.n} nodes -> {compiled.n} nodes, stateless")
    report = Simulator(compiled, expand_inputs(default_inputs(stateful))).run(
        expand_labeling(stateful, procedure_labeling(stateful, g, witness)),
        SynchronousSchedule(compiled.n),
        max_steps=2000,
    )
    print(f"  compiled protocol, same seed: {report.describe()}")


if __name__ == "__main__":
    main()
