"""Fault recovery: watch self-stabilization earn its name.

The paper's claim (Section 1.2) is operational: a stateless protocol
recovers from *any* transient corruption of the edge labels, as long as code
and inputs stay intact.  This walkthrough injects mid-run burst faults into
two very different constructions and measures the recovery:

1. **BGP on the good gadget** — a safe routing instance with a unique stable
   routing tree.  Recovery means the labeling returns to that tree, and the
   engine *certifies* the fixed point.
2. **The D-counter** — a distributed counter that never label-stabilizes on
   purpose (its job is to keep counting).  Recovery means the ring
   re-synchronizes: the engine proves the run re-entered a cycle and every
   node shows the same count.

Both finish with a `run_resilience_sweep` over many random corruptions,
printing the aggregated `ResilienceReport`.

Run:  python examples/fault_recovery.py
"""

import random

from repro.analysis import SweepCase, run_resilience_sweep
from repro.core import (
    Labeling,
    RunOutcome,
    Simulator,
    SynchronousSchedule,
    default_inputs,
)
from repro.dynamics import NO_ROUTE, bgp_protocol, good_gadget
from repro.faults import BurstFault, OneShotFault, RandomCorruption
from repro.power import d_counter_protocol


def bgp_walkthrough() -> None:
    print("=" * 72)
    print("1. BGP good gadget: burst fault mid-convergence")
    print("=" * 72)
    protocol = bgp_protocol(good_gadget())
    simulator = Simulator(protocol, default_inputs(protocol))
    initial = Labeling.uniform(protocol.topology, NO_ROUTE)

    # Three consecutive corruptions starting at step 5: half the edges get
    # random route advertisements, three steps in a row.
    faults = BurstFault([5, 6, 7], RandomCorruption(fraction=0.5, seed=2017))
    report = simulator.run_with_faults(
        initial, SynchronousSchedule(protocol.n), faults, max_steps=100
    )
    print(f"  {report.describe()}")
    print(f"  recovered (certified stable labeling): {report.recovered}")
    print(f"  rounds from last fault to the routing tree: {report.recovery_rounds}")
    print(f"  node 1 routes via: {report.outputs[1]}  (the unique tree: (1, 0))")
    print()


def d_counter_walkthrough() -> None:
    print("=" * 72)
    print("2. D-counter: one heavy corruption, then re-synchronization")
    print("=" * 72)
    n, modulus = 5, 7
    protocol = d_counter_protocol(n, modulus)
    simulator = Simulator(protocol, (0,) * n)
    rng = random.Random(7)
    initial = Labeling.random(protocol.topology, protocol.label_space, rng)

    faults = OneShotFault(4 * n + 4, RandomCorruption(fraction=0.7, seed=7))
    report = simulator.run_with_faults(
        initial, SynchronousSchedule(n), faults, max_steps=600
    )
    print(f"  {report.describe()}")
    print("  the counter never label-stabilizes — recovery is re-entering")
    print(f"  a counting orbit: outcome={report.outcome.value},")
    print(
        f"  cycle of length {report.cycle_length} entered"
        f" {report.cycle_start} rounds after the fault"
    )
    config = report.final
    print(f"  synchronized counts: {config.outputs}")
    config = simulator.step(config, frozenset(range(n)))
    print(f"  ...and one step later: {config.outputs}  (incremented mod {modulus})")
    print()


def resilience_sweeps() -> None:
    print("=" * 72)
    print("3. Resilience at sweep scale: 20 random corruptions each")
    print("=" * 72)

    protocol = bgp_protocol(good_gadget())
    initial = Labeling.uniform(protocol.topology, NO_ROUTE)
    cases = [SweepCase(default_inputs(protocol), initial, tag=k) for k in range(20)]
    report = run_resilience_sweep(
        protocol,
        cases,
        lambda i, c: SynchronousSchedule(protocol.n),
        lambda i, c: BurstFault([5, 9], RandomCorruption(0.5, seed=i)),
        max_steps=200,
        recovered="label",
    )
    print(f"  BGP good gadget:  {report.describe()}")
    print(f"    recovery-round histogram: {report.recovery_histogram()}")

    n, modulus = 5, 7
    counter = d_counter_protocol(n, modulus)
    rng = random.Random(1)
    counter_cases = [
        SweepCase(
            (0,) * n,
            Labeling.random(counter.topology, counter.label_space, rng),
            tag=k,
        )
        for k in range(20)
    ]
    counter_report = run_resilience_sweep(
        counter,
        counter_cases,
        lambda i, c: SynchronousSchedule(n),
        lambda i, c: OneShotFault(4 * n + 4, RandomCorruption(0.6, seed=i)),
        max_steps=600,
        recovered=lambda r: r.outcome is RunOutcome.OSCILLATING
        and len(set(r.outputs)) == 1,
    )
    print(f"  D-counter:        {counter_report.describe()}")
    print(f"    recovery-round histogram: {counter_report.recovery_histogram()}")
    print()
    print("Every case recovered — transient faults cannot unseat a")
    print("self-stabilizing stateless protocol (Section 1.2).")


def main() -> None:
    bgp_walkthrough()
    d_counter_walkthrough()
    resilience_sweeps()


if __name__ == "__main__":
    main()
