"""One graph, three exact questions: a tour of the exploration core.

Theorem 3.1 turns every question about r-fair runs into a question about one
directed graph over ``(labeling, countdown)`` states.  The unified
exploration core (`repro.stabilization.exploration.ExplorationGraph`)
materializes that graph once — labelings interned, activation sets cached,
transitions shared across countdowns — and three very different analyses
read it:

1. **attractor regions** — from which states is absorption into a stable
   labeling inevitable?
2. **model checking** — is the protocol label r-stabilizing, and if not,
   what concrete schedule oscillates?
3. **worst-case delay** — how long can an r-fair adversary keep the system
   away from a fixed point?

The finale shows the capacity the interned core buys — the Example-1
K_6 / r=4 graph (27,634 states, ~819k edges) took ~14 seconds to build with
the seed BFS and now materializes in about a second — and then goes one
clique further: K_7 / r=4 has 132,701 concrete states (~13s even on the
interned core), but under ``symmetry="auto"`` the exploration stores one
canonical state per S_7-orbit and covers all of them from ~475 stored
states in a couple of seconds, with ``graph.stats()`` reporting exactly
what was stored, covered, and cached.

Run:  python examples/states_graph.py
"""

import time

from repro import ExecutionPolicy
from repro.core import default_inputs
from repro.faults import exhaustive_worst_case_delay
from repro.stabilization import (
    StatesGraph,
    broadcast_labelings,
    decide_label_r_stabilizing,
    example1_protocol,
    one_token_labeling,
    stable_labeling_pair,
)


def main() -> None:
    # -- the graph ----------------------------------------------------------
    n, r = 4, 2
    protocol = example1_protocol(n)
    inputs = default_inputs(protocol)
    initials = list(broadcast_labelings(protocol.topology, protocol.label_space))
    graph = StatesGraph(protocol, inputs, r, initials)
    edges = sum(len(succ) for succ in graph.successors)
    print(f"Example-1 K_{n}, r = {r}: {len(graph)} states, {edges} edges")
    print(
        f"  interned: {graph.num_labelings} distinct labelings,"
        f" {graph.num_countdowns} distinct countdown vectors"
    )

    # -- 1: attractor regions ------------------------------------------------
    zero, one = stable_labeling_pair(n)
    region = graph.attractor_region({zero.values, one.values})
    initial_in = sum(1 for k in graph.initial_indices if k in region)
    print(
        f"  attractor of the stable pair: {len(region)}/{len(graph)} states;"
        f" {initial_in}/{len(graph.initial_indices)} initializations inevitable"
        f" => label {r}-stabilizing (r = n-2 is the paper's tight bound)"
    )

    # -- 2: model checking (same graph family, r = n-1) ----------------------
    verdict = decide_label_r_stabilizing(
        protocol,
        inputs,
        n - 1,
        initial_labelings=broadcast_labelings(
            protocol.topology, protocol.label_space
        ),
    )
    witness = verdict.witness
    print(
        f"  r = {n - 1}: stabilizing? {verdict.stabilizing}"
        f" (explored {verdict.states_explored} states);"
        f" witness loop of length {len(witness.loop)} from"
        f" labeling {witness.initial_labeling.values}"
    )

    # -- 3: worst-case delay -------------------------------------------------
    for r_probe in (1, n - 2, n - 1):
        worst = exhaustive_worst_case_delay(
            protocol, inputs, one_token_labeling(n), r_probe
        )
        delay = "unbounded" if worst.delay is None else f"{worst.delay} steps"
        print(
            f"  worst r={r_probe}-fair delay from the one-token labeling:"
            f" {delay} ({worst.states_explored} states)"
        )

    # -- capacity: a configuration the seed BFS could not touch --------------
    big_n, big_r = 6, 4
    protocol = example1_protocol(big_n)
    inputs = default_inputs(protocol)
    initials = list(broadcast_labelings(protocol.topology, protocol.label_space))
    start = time.perf_counter()
    graph = StatesGraph(protocol, inputs, big_r, initials)
    elapsed = time.perf_counter() - start
    edges = sum(len(succ) for succ in graph.successors)
    print(
        f"\nCapacity: K_{big_n}, r = {big_r} -> {len(graph):,} states,"
        f" {edges:,} edges in {elapsed:.2f}s"
        f" ({len(graph) / elapsed:,.0f} states/s; the seed BFS needed ~14s)"
    )

    # -- symmetry quotient: one clique further --------------------------------
    # K_7 / r=4 has 132,701 concrete states.  The Example-1 reaction is
    # equivariant under every node permutation, so symmetry="auto" discovers
    # and verifies S_7, canonicalizes states before interning, and explores
    # one representative per orbit — same verdicts, concrete witnesses.
    huge_n, huge_r = 7, 4
    protocol = example1_protocol(huge_n)
    inputs = default_inputs(protocol)
    initials = list(broadcast_labelings(protocol.topology, protocol.label_space))
    start = time.perf_counter()
    graph = StatesGraph(
        protocol, inputs, huge_r, initials,
        policy=ExecutionPolicy(symmetry="auto"),
    )
    elapsed = time.perf_counter() - start
    stats = graph.stats()
    print(
        f"Quotient: K_{huge_n}, r = {huge_r} under S_{huge_n}"
        f" (order {stats.symmetry_order}) -> {stats.states:,} stored states"
        f" covering {stats.covered_states:,} concrete ones"
        f" ({stats.reduction_factor:,.0f}x) in {elapsed:.2f}s"
    )
    print(
        f"  stats: {stats.edges:,} edges, peak frontier {stats.peak_frontier},"
        f" transition cache {stats.transition_cache_hits:,} hits /"
        f" {stats.transition_cache_misses:,} misses"
    )


if __name__ == "__main__":
    main()
