"""The sweep job service: submit, stream, resubmit (served from cache).

ISSUE 7's service layer in one sitting: build a resilience sweep over the
paper's Example 1 clique protocol, submit it to a local
:class:`repro.service.SweepService`, watch shard aggregates stream in, then
resubmit the identical job and watch the content-addressed cache serve it —
same report, bit for bit, at a fingerprint lookup per case.  A third
submission reuses the cached physics under a *different* recovery
criterion: the cache stores criterion-free raw results, so re-judging is
free.

Run:  python examples/sweep_service.py
"""

import random

from repro.core import Labeling, RandomRFairSchedule
from repro.faults import NoFaults, OneShotFault, RandomCorruption
from repro.service import ServiceClient, plan_resilience_sweep
from repro.stabilization import example1_protocol

N = 4
CASES = 48
MAX_STEPS = 400
SHARD_SIZE = 12


def build_plan():
    """Plan the sweep: factories run here, once, in case order."""
    protocol = example1_protocol(N)
    topology = protocol.topology
    rng = random.Random(7)
    from repro.analysis import SweepCase

    cases = [
        SweepCase(
            (0,) * N,
            Labeling(
                topology, tuple(rng.randrange(2) for _ in topology.edges)
            ),
            tag=k,
        )
        for k in range(CASES)
    ]

    def schedule_factory(index, case):
        return RandomRFairSchedule(N, r=2, seed=1_000 + index, p=0.9)

    def fault_factory(index, case):
        if index % 3 == 0:
            return NoFaults()  # every third case is a fault-free control
        return OneShotFault(5, RandomCorruption(0.5, seed=index))

    return plan_resilience_sweep(
        protocol, cases, schedule_factory, fault_factory, max_steps=MAX_STEPS
    )


def main() -> None:
    plan = build_plan()
    print(f"plan: {plan.describe()}")
    print(f"plan fingerprint: {plan.plan_fingerprint[:32]}…")

    with ServiceClient() as client:
        # -- cold: every case is simulated --------------------------------
        print("\n=== cold submission (streaming shard aggregates) ===")
        job = client.submit_plan(plan, shard_size=SHARD_SIZE)
        for progress in job.stream():
            aggregate = progress.aggregate
            print(
                f"  {progress.describe()}"
                f" | recovery so far {aggregate.recovery_rate:.0%}"
            )
        cold = job.result()
        print(f"cold report: {cold.describe()}")

        # -- warm: the identical plan is served from the cache ------------
        print("\n=== identical resubmission (served from cache) ===")
        rerun = client.submit_plan(build_plan(), shard_size=SHARD_SIZE)
        for progress in rerun.stream():
            print(f"  {progress.describe()}")
        warm = rerun.result()
        status = rerun.status()
        print(f"warm report: {warm.describe()}")
        print(
            f"bit-identical to cold: {warm == cold}"
            f"  (cache {status.cache_hits} hits / {status.cache_misses} misses)"
        )
        assert warm == cold

        # -- same physics, different recovery criterion -------------------
        # "orbit" counts any certified recurrent orbit as recovered; the
        # cached raw results are re-judged without a single new simulation.
        print("\n=== resubmission under the 'orbit' criterion ===")
        orbit = client.submit_plan(build_plan(), recovered="orbit").result()
        print(f"orbit report: {orbit.describe()}")
        print(f"cache stats: {client.service.cache.stats.describe()}")


if __name__ == "__main__":
    main()
