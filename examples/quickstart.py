"""Quickstart: define a stateless protocol, run it, analyze stabilization.

This walks through the paper's core model on its own Example 1: a clique of
n processors, each broadcasting one bit — 0 if every incoming edge carries 0,
else 1.  Both the all-0 and all-1 labelings are stable, so by Theorem 3.1 the
protocol cannot be label (n-1)-stabilizing; the paper shows it *is*
(n-2)-stabilizing.

Run:  python examples/quickstart.py
"""

from repro.analysis import SweepCase, run_sweep
from repro.core import (
    RandomRFairSchedule,
    Simulator,
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
    default_inputs,
    minimal_fairness,
)
from repro.graphs import clique
from repro.stabilization import (
    broadcast_labelings,
    decide_label_r_stabilizing,
    one_token_labeling,
    oscillating_schedule,
    stable_labelings,
)

N = 4


def build_protocol() -> StatelessProtocol:
    """Example 1, built by hand with the public API."""
    topology = clique(N)

    def or_bit(incoming, _x):
        bit = 0 if all(value == 0 for value in incoming.values()) else 1
        return bit, bit

    reactions = [
        UniformReaction(topology.out_edges(i), or_bit) for i in range(N)
    ]
    return StatelessProtocol(topology, binary(), reactions, name="quickstart")


def main() -> None:
    protocol = build_protocol()
    inputs = default_inputs(protocol)
    simulator = Simulator(protocol, inputs)

    print(f"protocol: {protocol}")
    print(f"label complexity L_n = {protocol.label_complexity} bit(s)\n")

    # 1. Run synchronously from a random-ish labeling: converges fast.
    labeling = one_token_labeling(N)
    report = simulator.run(labeling, SynchronousSchedule(N))
    print("synchronous run from a one-token labeling:")
    print(f"  {report.describe()}")
    print(f"  outputs: {report.outputs}\n")

    # 2. Enumerate the stable labelings: exactly two (Theorem 3.1 trigger).
    stables = stable_labelings(
        protocol, inputs, broadcast_labelings(protocol.topology, protocol.label_space)
    )
    print(f"stable labelings: {len(stables)} (all-0 and all-1)\n")

    # 3. The explicit (n-1)-fair schedule under which the labels never settle.
    schedule = oscillating_schedule(N)
    print(
        "oscillating schedule fairness:"
        f" r = {minimal_fairness(schedule, 100)} (= n-1 = {N - 1})"
    )
    report = simulator.run(labeling, schedule, max_steps=1000)
    print(f"  run under it: {report.describe()}\n")

    # 4. Exact verification: model-check r-stabilization both ways.
    for r in (N - 1, N - 2):
        verdict = decide_label_r_stabilizing(
            protocol,
            inputs,
            r,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        print(
            f"label {r}-stabilizing? {verdict.stabilizing}"
            f"   (explored {verdict.states_explored} states)"
        )
        if verdict.witness is not None:
            witness = verdict.witness
            replay = simulator.run(
                witness.initial_labeling,
                witness.to_schedule(N),
                max_steps=2000,
            )
            print(f"   witness replay: {replay.describe()}")

    # 5. Random r-fair schedules with r < n-1 always converge.  Many runs of
    #    one protocol go through the sweep runner: the protocol compiles once,
    #    every case reuses the compiled form, and the report aggregates
    #    outcome counts and convergence-round histograms.
    print("\nrandom (n-2)-fair runs, via run_sweep:")
    cases = [SweepCase(inputs=inputs, labeling=labeling, tag=seed) for seed in range(3)]
    sweep = run_sweep(
        protocol,
        cases,
        lambda _index, case: RandomRFairSchedule(N, r=N - 2, seed=case.tag),
        max_steps=5000,
    )
    for result in sweep.results:
        print(
            f"  seed {result.tag}: {result.outcome.value}"
            f" in {result.steps_executed} steps, outputs={result.outputs}"
        )
    print(f"  {sweep.describe()}")
    print(f"  label-round histogram: {sweep.round_histogram('label')}")


if __name__ == "__main__":
    main()
