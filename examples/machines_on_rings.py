"""Theorem 5.2 in action: Turing machines and branching programs on rings.

Unidirectional-ring protocols with logarithmic labels decide exactly L/poly.
This example simulates a logspace machine (with nonuniform advice!) and a
branching program on the ring, then re-runs the protocol with the paper's
single-label "logspace-style" diagonal simulation.

Run:  python examples/machines_on_rings.py
"""

from itertools import product

from repro.analysis import SweepCase, run_sweep
from repro.core import Labeling, SynchronousSchedule
from repro.power import (
    bp_ring_protocol,
    machine_ring_protocol,
    machine_ring_round_bound,
    simulate_unidirectional,
)
from repro.substrates.branching_programs import majority_bp
from repro.substrates.turing import (
    ConfigurationGraph,
    advice_equality_machine,
    parity_machine,
)


def main() -> None:
    n = 4

    # -- parity machine --------------------------------------------------------
    machine = parity_machine()
    graph = ConfigurationGraph(machine, n)
    protocol = machine_ring_protocol(graph)
    print(f"parity machine on the {n}-ring:")
    print(f"  |Z| = {graph.size} configurations,"
          f" label complexity = {protocol.label_complexity:.1f} bits")
    initial = Labeling.uniform(protocol.topology, next(iter(protocol.label_space)))
    sweep = run_sweep(
        protocol,
        [
            SweepCase(inputs=x, labeling=initial, tag=x)
            for x in ((1, 0, 1, 1), (1, 1, 0, 0))
        ],
        lambda _i, _c: SynchronousSchedule(n),
        max_steps=machine_ring_round_bound(graph) + 100,
    )
    for result in sweep.results:
        x = result.tag
        print(f"  x={x}: ring output {set(result.outputs)}"
              f" (parity = {sum(x) % 2}), rounds = {result.output_rounds}")

    # -- nonuniform advice ------------------------------------------------------
    advice = "101"
    machine = advice_equality_machine()
    graph = ConfigurationGraph(machine, 3, advice=advice)
    protocol = machine_ring_protocol(graph)
    print(f"\nadvice-equality machine (advice = {advice!r}) on the 3-ring:")
    initial = Labeling.uniform(protocol.topology, next(iter(protocol.label_space)))
    sweep = run_sweep(
        protocol,
        [
            SweepCase(inputs=x, labeling=initial, tag=x)
            for x in product((0, 1), repeat=3)
        ],
        lambda _i, _c: SynchronousSchedule(3),
        max_steps=machine_ring_round_bound(graph) + 100,
    )
    for result in sweep.results:
        if set(result.outputs) == {1}:
            print(f"  accepted: {result.tag}")

    # -- branching program + diagonal simulation --------------------------------
    bp = majority_bp(3)
    protocol = bp_ring_protocol(bp)
    initial = next(iter(protocol.label_space))
    print(f"\nmajority BP (size {bp.size}) on the 3-ring,"
          " via the diagonal single-label simulation:")
    for x in product((0, 1), repeat=3):
        y = simulate_unidirectional(protocol, x, initial, steps=300)
        print(f"  x={x}: output {y} (majority = {int(sum(x) >= 1.5)})")


if __name__ == "__main__":
    main()
