"""BGP routing as stateless computation: DISAGREE, BAD GADGET, GOOD GADGET.

The paper's motivating application (Section 1.1): BGP route selection maps
the latest neighbor advertisements to a route choice — a stateless protocol.
This example reproduces the three canonical Stable-Paths-Problem gadgets and
the Theorem 3.1 consequence: two stable routing trees make route flapping
possible under fair activation.

Run:  python examples/bgp_routing.py
"""

from repro.core import (
    Labeling,
    RandomRFairSchedule,
    Simulator,
    SynchronousSchedule,
    default_inputs,
)
from repro.dynamics import (
    NO_ROUTE,
    bad_gadget,
    bgp_protocol,
    disagree,
    good_gadget,
    shortest_path_instance,
)
from repro.graphs import bidirectional_ring
from repro.stabilization import broadcast_labelings, decide_label_r_stabilizing


def show(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    # -- DISAGREE: two stable routing trees --------------------------------
    show("DISAGREE (two stable routing trees)")
    instance = disagree()
    for k, solution in enumerate(instance.stable_solutions()):
        routes = {node: path for node, path in solution.items() if node != 0}
        print(f"  stable tree {k + 1}: {routes}")
    protocol = bgp_protocol(instance)
    verdict = decide_label_r_stabilizing(
        protocol,
        default_inputs(protocol),
        2,
        initial_labelings=broadcast_labelings(
            protocol.topology, protocol.label_space
        ),
    )
    print(f"  label 2-stabilizing? {verdict.stabilizing}  (Theorem 3.1: no)")
    witness = verdict.witness
    print(
        "  oscillation witness: prefix"
        f" {len(witness.prefix)} steps, loop {len(witness.loop)} steps"
    )

    # -- BAD GADGET: no stable tree at all ----------------------------------
    show("BAD GADGET (no stable routing tree)")
    instance = bad_gadget()
    print(f"  stable trees: {instance.stable_solutions()}")
    protocol = bgp_protocol(instance)
    report = Simulator(protocol, default_inputs(protocol)).run(
        Labeling.uniform(protocol.topology, NO_ROUTE),
        SynchronousSchedule(protocol.n),
        max_steps=2000,
    )
    print(f"  synchronous run: {report.describe()}  (flaps forever)")

    # -- GOOD GADGET: safe instance -----------------------------------------
    show("GOOD GADGET (unique stable tree, always converges)")
    instance = good_gadget()
    solution = instance.stable_solutions()[0]
    print(f"  unique tree: { {u: p for u, p in solution.items() if u != 0} }")
    protocol = bgp_protocol(instance)
    for seed in range(3):
        report = Simulator(protocol, default_inputs(protocol)).run(
            Labeling.uniform(protocol.topology, NO_ROUTE),
            RandomRFairSchedule(protocol.n, r=3, seed=seed),
            max_steps=4000,
        )
        print(f"  random 3-fair run (seed {seed}): {report.describe()}")

    # -- shortest-path routing on a ring ------------------------------------
    show("shortest-path policy on a 7-ring")
    instance = shortest_path_instance(bidirectional_ring(7), destination=0)
    protocol = bgp_protocol(instance)
    report = Simulator(protocol, default_inputs(protocol)).run(
        Labeling.uniform(protocol.topology, NO_ROUTE),
        SynchronousSchedule(protocol.n),
    )
    print(f"  {report.describe()}")
    for node in range(1, 7):
        print(f"  node {node} routes via {report.outputs[node]}")


if __name__ == "__main__":
    main()
